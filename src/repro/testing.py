"""Test-support toolkit: ready-made candidate device families.

Downstream users who implement a consensus device and want to know
"does the engine really refute *mine*?" — or who want to fuzz their
own protocols the way this library's property suite does — can build
candidates from these factories.  With hypothesis installed,
:func:`agreement_device_families` and :func:`averaging_device_families`
are search strategies over whole families of deterministic devices,
suitable for ``@given``.

Everything here returns pure devices (safe to install at several
covering nodes at once).
"""

from __future__ import annotations

from collections.abc import Callable
from typing import Any

from .runtime.sync.device import FunctionDevice, SyncDevice


def constant_device(value: Any) -> SyncDevice:
    """Decides ``value`` immediately, says nothing.  Satisfies
    agreement; Theorem 1's engine breaks it on validity."""
    return FunctionDevice(
        init=lambda ctx: value,
        send=lambda ctx, state, r: {},
        transition=lambda ctx, state, r, inbox: state,
        choose=lambda ctx, state: state,
    )


def echo_device() -> SyncDevice:
    """Decides its own input.  Satisfies validity; the engine breaks
    it on agreement."""
    return FunctionDevice(
        init=lambda ctx: ctx.input,
        send=lambda ctx, state, r: {},
        transition=lambda ctx, state, r, inbox: state,
        choose=lambda ctx, state: state,
    )


def gossip_rule_device(
    rounds: int,
    rule: Callable[[Any, tuple[Any, ...]], Any],
) -> SyncDevice:
    """Gossips the input for ``rounds`` rounds, then decides
    ``rule(own_input, received_values)``.

    ``rule`` must be deterministic.  ``received_values`` is the tuple
    of every non-``None`` payload heard, in a canonical order.
    """
    if rounds < 1:
        raise ValueError("need at least one gossip round")

    def init(ctx):
        return ((), None)

    def send(ctx, state, r):
        if r >= rounds:
            return {}
        return {p: ctx.input for p in ctx.ports}

    def transition(ctx, state, r, inbox):
        seen, decided = state
        if r < rounds:
            seen = seen + tuple(
                v
                for _, v in sorted(
                    inbox.items(), key=lambda kv: str(kv[0])
                )
                if v is not None
            )
        if r == rounds - 1 and decided is None:
            decided = rule(ctx.input, seen)
        return (seen, decided)

    def choose(ctx, state):
        return state[1]

    return FunctionDevice(init, send, transition, choose)


def majority_rule(default: Any = 0) -> Callable:
    def rule(own, seen):
        values = (own, *seen)
        tally: dict[Any, int] = {}
        for v in values:
            tally[v] = tally.get(v, 0) + 1
        best = max(tally.values())
        winners = sorted(
            (v for v, c in tally.items() if c == best), key=repr
        )
        return winners[0] if len(winners) == 1 else default

    return rule


def affine_blend_rule(w_min: float, w_max: float) -> Callable:
    """Real-valued rule: a convex blend of min, max, and own input."""
    if w_min < 0 or w_max < 0 or w_min + w_max > 1:
        raise ValueError("weights must be non-negative and sum to <= 1")
    w_own = 1.0 - w_min - w_max

    def rule(own, seen):
        pool = [float(own), *(float(v) for v in seen)]
        return w_min * min(pool) + w_max * max(pool) + w_own * float(own)

    return rule


# -- hypothesis strategies (optional dependency) -------------------------

try:  # pragma: no cover - trivially exercised via the property suite
    from hypothesis import strategies as _st

    _HAVE_HYPOTHESIS = True
except ImportError:  # pragma: no cover
    _HAVE_HYPOTHESIS = False


def _require_hypothesis():
    if not _HAVE_HYPOTHESIS:
        raise ImportError(
            "hypothesis is required for the strategy helpers; "
            "pip install hypothesis"
        )


def agreement_device_families():
    """Hypothesis strategy over Boolean agreement-device families.

    Draws (device, rounds); feed the device to every node and the
    rounds+1 horizon to an engine — Theorem 1 guarantees a witness.
    """
    _require_hypothesis()

    def build(draw_tuple):
        rounds, rule_name, seed = draw_tuple
        if rule_name == "majority":
            rule = majority_rule()
        elif rule_name == "min":
            rule = lambda own, seen: min((own, *seen))  # noqa: E731
        elif rule_name == "max":
            rule = lambda own, seen: max((own, *seen))  # noqa: E731
        elif rule_name == "own":
            rule = lambda own, seen: own  # noqa: E731
        else:  # seeded hash rule

            def rule(own, seen, _seed=seed):
                import hashlib

                digest = hashlib.sha256(
                    f"{_seed}:{own}:{seen}".encode()
                ).digest()
                return digest[0] % 2

        return gossip_rule_device(rounds, rule), rounds

    return _st.tuples(
        _st.integers(1, 3),
        _st.sampled_from(["majority", "min", "max", "own", "hash"]),
        _st.integers(0, 2**16),
    ).map(build)


def averaging_device_families():
    """Hypothesis strategy over real-valued one-exchange devices
    (affine blends of min/max/own) — Theorem 5/6 candidates."""
    _require_hypothesis()

    def build(weights):
        w_min, frac = weights
        w_max = (1.0 - w_min) * frac
        return gossip_rule_device(1, affine_blend_rule(w_min, w_max))

    return _st.tuples(
        _st.floats(0.0, 1.0), _st.floats(0.0, 1.0)
    ).map(build)


# -- differential oracle for the compiled executor -------------------------


def reference_sync_run(system, rounds, injector=None):
    """The pre-compilation interpretive executor, kept verbatim as a
    differential-testing oracle (and as the "before" leg of
    ``scripts/bench_snapshot.py``).

    Re-resolves devices, contexts and port labels through the system on
    every round, exactly as ``repro.runtime.sync.executor.run`` did
    before execution plans existed.  The golden-equivalence tests
    assert that :func:`repro.runtime.sync.executor.run` (the plan-based
    hot path) produces behaviors — and injection traces — equal to this
    function's, for the same system, rounds and fault plan.
    """
    from .runtime.sync.behavior import EdgeBehavior, NodeBehavior, SyncBehavior
    from .runtime.sync.executor import ExecutionError, _NodeRun

    if rounds < 0:
        raise ExecutionError("rounds must be non-negative")
    graph = system.graph
    contexts = {u: system.context(u) for u in graph.nodes}
    runs = {}
    for u in graph.nodes:
        device = system.device(u)
        state = device.init_state(contexts[u])
        node_run = _NodeRun(states=[state])
        runs[u] = node_run
        node_run.observe_choice(device, contexts[u], 0, u)

    edge_messages = {edge: [] for edge in graph.edges}

    for round_index in range(rounds):
        outboxes = {}
        for u in graph.nodes:
            device = system.device(u)
            ctx = contexts[u]
            out = device.send(ctx, runs[u].states[-1], round_index)
            valid_ports = set(ctx.ports)
            for label in out:
                if label not in valid_ports:
                    raise ExecutionError(
                        f"device at {u!r} sent on unknown port {label!r}"
                    )
            for neighbor in graph.neighbors(u):
                label = system.port(u, neighbor)
                message = out.get(label)
                if injector is not None:
                    message = injector.deliver(
                        (u, neighbor), round_index, message
                    )
                outboxes[(u, neighbor)] = message
                edge_messages[(u, neighbor)].append(message)

        for u in graph.nodes:
            device = system.device(u)
            ctx = contexts[u]
            inbox = {
                system.port(u, neighbor): outboxes[(neighbor, u)]
                for neighbor in graph.in_neighbors(u)
            }
            state = device.transition(
                ctx, runs[u].states[-1], round_index, inbox
            )
            runs[u].states.append(state)
            runs[u].observe_choice(device, ctx, round_index + 1, u)

    node_behaviors = {
        u: NodeBehavior(
            states=tuple(r.states),
            decision=r.decision,
            decided_at=r.decided_at,
        )
        for u, r in runs.items()
    }
    edge_behaviors = {
        edge: EdgeBehavior(tuple(msgs)) for edge, msgs in edge_messages.items()
    }
    return SyncBehavior(
        graph=graph,
        rounds=rounds,
        node_behaviors=node_behaviors,
        edge_behaviors=edge_behaviors,
    )


def bare_execute_plan(plan, rounds, injector=None):
    """``execute_plan`` with the telemetry hooks stripped out entirely.

    The instrumented executor's disabled-telemetry cost is supposed to
    be one hoisted boolean check per call plus one flag test per round;
    this verbatim-minus-telemetry copy is the baseline that claim is
    measured against (the ``telemetry_overhead`` section of
    ``scripts/bench_snapshot.py`` gates the ratio).  Keep it in lockstep
    with :func:`repro.runtime.sync.executor.execute_plan` — the bench
    also asserts equal behaviors.
    """
    from .runtime.sync.behavior import EdgeBehavior, NodeBehavior, SyncBehavior
    from .runtime.sync.executor import ExecutionError, _NodeRun

    if rounds < 0:
        raise ExecutionError("rounds must be non-negative")
    compiled = plan.nodes
    runs = []
    for cn in compiled:
        state = cn.device.init_state(cn.ctx)
        node_run = _NodeRun(states=[state])
        runs.append(node_run)
        node_run.observe_choice(cn.device, cn.ctx, 0, cn.node)

    edge_messages = {edge: [] for edge in plan.edges}

    for round_index in range(rounds):
        outboxes = {}
        for cn, node_run in zip(compiled, runs):
            out = cn.device.send(cn.ctx, node_run.states[-1], round_index)
            valid_ports = cn.valid_ports
            for label in out:
                if label not in valid_ports:
                    raise ExecutionError(
                        f"device at {cn.node!r} sent on unknown port {label!r}"
                    )
            for edge, label in cn.out_routes:
                message = out.get(label)
                if injector is not None:
                    message = injector.deliver(edge, round_index, message)
                outboxes[edge] = message
                edge_messages[edge].append(message)

        for cn, node_run in zip(compiled, runs):
            inbox = {
                label: outboxes[edge] for label, edge in cn.in_routes
            }
            state = cn.device.transition(
                cn.ctx, node_run.states[-1], round_index, inbox
            )
            node_run.states.append(state)
            node_run.observe_choice(cn.device, cn.ctx, round_index + 1, cn.node)

    node_behaviors = {
        cn.node: NodeBehavior(
            states=tuple(r.states),
            decision=r.decision,
            decided_at=r.decided_at,
        )
        for cn, r in zip(compiled, runs)
    }
    edge_behaviors = {
        edge: EdgeBehavior(tuple(msgs)) for edge, msgs in edge_messages.items()
    }
    return SyncBehavior(
        graph=plan.graph,
        rounds=rounds,
        node_behaviors=node_behaviors,
        edge_behaviors=edge_behaviors,
    )
