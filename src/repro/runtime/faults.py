"""Link-level fault injection, shared by both runtimes.

The paper's Fault axiom bottles *node* misbehavior; this module bottles
*channel* misbehavior.  A :class:`FaultPlan` is a declarative list of
per-edge faults — drops, corruption, delivery delays, periodic omission
bursts — plus timed partitions (an edge set cut over an interval).
Everything is deterministic given the plan (including its ``seed``), so
a system-plus-plan still has exactly one behavior, which keeps every
campaign run replayable.

Two injectors interpret a plan:

* :class:`SyncFaultInjector` interposes on the synchronous executor's
  per-round, per-edge message slots (``start``/``end`` are round
  indices).
* :class:`TimedFaultInjector` interposes on the timed executor's sends
  (``start``/``end`` are real times; a delay adds real time to the
  arrival).

Every action an injector takes is appended to an
:class:`InjectionTrace`; two runs of the same system under the same
plan produce identical traces, and the campaign engine
(:mod:`repro.analysis.campaign`) leans on that for counterexample
shrinking and one-command reproduction.
"""

from __future__ import annotations

import math
import random
from collections.abc import Iterable
from dataclasses import dataclass, field
from typing import Any

from ..graphs.graph import CommunicationGraph, DirectedEdge, GraphError, NodeId

FAULT_KINDS = ("drop", "corrupt", "delay", "omit")


@dataclass(frozen=True)
class LinkFault:
    """One fault on one directed edge, active on ``start <= t < end``.

    Kinds
    -----
    ``drop``
        Every message in the window is lost.
    ``corrupt``
        Every message is replaced by a different value drawn
        deterministically from the plan's ``corrupt_pool``.
    ``delay``
        Delivery is postponed by ``delay`` (rounds in the synchronous
        model, real time in the timed model).
    ``omit``
        Periodic omission burst: within the window, the first ``burst``
        of every ``period`` slots are dropped (``period``/``burst``
        are measured in rounds / in units of ``period`` real time).

    ``probability < 1`` makes the fault fire on a per-slot seeded coin
    (still deterministic given the plan seed).
    """

    edge: DirectedEdge
    kind: str
    start: float = 0.0
    end: float = math.inf
    delay: float = 1.0
    burst: int = 1
    period: int = 2
    probability: float = 1.0

    def __post_init__(self) -> None:
        if self.kind not in FAULT_KINDS:
            raise GraphError(f"unknown link-fault kind {self.kind!r}")
        if self.start < 0 or self.end < self.start:
            raise GraphError("fault window must satisfy 0 <= start <= end")
        if self.kind == "delay" and self.delay <= 0:
            raise GraphError("delay faults need a positive delay")
        if self.kind == "omit" and not (0 < self.burst <= self.period):
            raise GraphError("omit faults need 0 < burst <= period")
        if not (0.0 < self.probability <= 1.0):
            raise GraphError("probability must be in (0, 1]")

    def active_at(self, t: float) -> bool:
        if not (self.start <= t < self.end):
            return False
        if self.kind == "omit":
            return ((t - self.start) % self.period) < self.burst
        return True

    def describe(self) -> str:
        u, v = self.edge
        window = f"[{self.start}, {'inf' if math.isinf(self.end) else self.end})"
        extra = ""
        if self.kind == "delay":
            extra = f" by {self.delay}"
        elif self.kind == "omit":
            extra = f" {self.burst}/{self.period}"
        if self.probability < 1.0:
            extra += f" p={self.probability}"
        return f"{self.kind}{extra} on {u}->{v} over {window}"


@dataclass(frozen=True)
class Partition:
    """An edge set cut over an interval — no message crosses it."""

    edges: frozenset[DirectedEdge]
    start: float = 0.0
    end: float = math.inf

    def __post_init__(self) -> None:
        if self.start < 0 or self.end < self.start:
            raise GraphError("partition window must satisfy 0 <= start <= end")

    def active_at(self, edge: DirectedEdge, t: float) -> bool:
        return edge in self.edges and self.start <= t < self.end

    def describe(self) -> str:
        cut = ", ".join(sorted(f"{u}->{v}" for u, v in self.edges))
        window = f"[{self.start}, {'inf' if math.isinf(self.end) else self.end})"
        return f"partition {{{cut}}} over {window}"


def partition_between(
    graph: CommunicationGraph,
    side: Iterable[NodeId],
    start: float = 0.0,
    end: float = math.inf,
) -> Partition:
    """The partition cutting both directions between ``side`` and the
    rest of ``graph`` over ``[start, end)``."""
    inside = set(side)
    cut = frozenset(
        (u, v)
        for (u, v) in graph.edges
        if (u in inside) != (v in inside)
    )
    return Partition(edges=cut, start=start, end=end)


@dataclass(frozen=True)
class FaultPlan:
    """A declarative, deterministic channel-fault schedule.

    The plan is a tuple of :class:`LinkFault` atoms plus a tuple of
    :class:`Partition` atoms; ``seed`` drives corruption values and
    probabilistic coins.  Plans are value objects: equal plans inject
    identically, and the campaign shrinker works by deleting atoms.
    """

    link_faults: tuple[LinkFault, ...] = ()
    partitions: tuple[Partition, ...] = ()
    seed: int = 0
    corrupt_pool: tuple[Any, ...] = (0, 1)

    @property
    def atoms(self) -> tuple[Any, ...]:
        """Shrinkable units: every link fault and every partition."""
        return self.link_faults + self.partitions

    def without_atoms(self, indices: Iterable[int]) -> "FaultPlan":
        """A copy with the atoms at ``indices`` (into :attr:`atoms`)
        removed — the shrinker's one move."""
        doomed = set(indices)
        kept = [a for i, a in enumerate(self.atoms) if i not in doomed]
        return FaultPlan(
            link_faults=tuple(a for a in kept if isinstance(a, LinkFault)),
            partitions=tuple(a for a in kept if isinstance(a, Partition)),
            seed=self.seed,
            corrupt_pool=self.corrupt_pool,
        )

    def faulty_edges(self) -> frozenset[DirectedEdge]:
        edges = {f.edge for f in self.link_faults}
        for p in self.partitions:
            edges |= p.edges
        return frozenset(edges)

    @property
    def size(self) -> int:
        return len(self.atoms)

    def is_trivial(self) -> bool:
        return not self.atoms

    def describe(self) -> str:
        if self.is_trivial():
            return "fault-free plan"
        return "; ".join(a.describe() for a in self.atoms)

    # -- persistence -----------------------------------------------------

    def to_dict(self) -> dict[str, Any]:
        return {
            "seed": self.seed,
            "corrupt_pool": list(self.corrupt_pool),
            "link_faults": [
                {
                    "edge": [str(f.edge[0]), str(f.edge[1])],
                    "kind": f.kind,
                    "start": f.start,
                    "end": None if math.isinf(f.end) else f.end,
                    "delay": f.delay,
                    "burst": f.burst,
                    "period": f.period,
                    "probability": f.probability,
                }
                for f in self.link_faults
            ],
            "partitions": [
                {
                    "edges": sorted(
                        [str(u), str(v)] for (u, v) in p.edges
                    ),
                    "start": p.start,
                    "end": None if math.isinf(p.end) else p.end,
                }
                for p in self.partitions
            ],
        }

    @staticmethod
    def from_dict(
        data: dict[str, Any], graph: CommunicationGraph
    ) -> "FaultPlan":
        """Rebuild a plan serialized by :meth:`to_dict`, resolving node
        names against ``graph`` (JSON stringifies node ids)."""
        by_name = {str(u): u for u in graph.nodes}

        def node(name: str) -> NodeId:
            if name not in by_name:
                raise GraphError(f"plan names unknown node {name!r}")
            return by_name[name]

        link_faults = tuple(
            LinkFault(
                edge=(node(f["edge"][0]), node(f["edge"][1])),
                kind=f["kind"],
                start=f["start"],
                end=math.inf if f["end"] is None else f["end"],
                delay=f.get("delay", 1.0),
                burst=f.get("burst", 1),
                period=f.get("period", 2),
                probability=f.get("probability", 1.0),
            )
            for f in data.get("link_faults", ())
        )
        partitions = tuple(
            Partition(
                edges=frozenset(
                    (node(u), node(v)) for u, v in p["edges"]
                ),
                start=p["start"],
                end=math.inf if p["end"] is None else p["end"],
            )
            for p in data.get("partitions", ())
        )
        return FaultPlan(
            link_faults=link_faults,
            partitions=partitions,
            seed=data.get("seed", 0),
            corrupt_pool=tuple(data.get("corrupt_pool", (0, 1))),
        )


@dataclass(frozen=True)
class InjectionRecord:
    """One action the injector took: what, where, when, and to which
    message."""

    time: float
    edge: DirectedEdge
    action: str  # drop | partition | corrupt | delay | deliver-delayed | preempt
    original: Any = None
    delivered: Any = None

    def describe(self) -> str:
        u, v = self.edge
        return (
            f"t={self.time} {u}->{v}: {self.action} "
            f"({self.original!r} -> {self.delivered!r})"
        )


@dataclass
class InjectionTrace:
    """The full record of a run's injected actions, in injection order.

    Structural equality is the module's determinism contract: same
    system + same plan ⇒ ``==`` traces.
    """

    records: list[InjectionRecord] = field(default_factory=list)

    def append(self, record: InjectionRecord) -> None:
        self.records.append(record)

    def __len__(self) -> int:
        return len(self.records)

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, InjectionTrace):
            return NotImplemented
        return self.records == other.records

    def describe(self) -> str:
        if not self.records:
            return "no injections"
        return "\n".join(r.describe() for r in self.records)

    def to_jsonable(self) -> list[dict[str, Any]]:
        return [
            {
                "time": r.time,
                "edge": [str(r.edge[0]), str(r.edge[1])],
                "action": r.action,
                "original": repr(r.original),
                "delivered": repr(r.delivered),
            }
            for r in self.records
        ]


class _PlanIndex:
    """Per-edge view of a plan, shared by the two injectors."""

    def __init__(self, plan: FaultPlan) -> None:
        self.plan = plan
        self.faults_by_edge: dict[DirectedEdge, list[LinkFault]] = {}
        for fault in plan.link_faults:
            self.faults_by_edge.setdefault(fault.edge, []).append(fault)

    def partition_active(self, edge: DirectedEdge, t: float) -> bool:
        return any(p.active_at(edge, t) for p in self.plan.partitions)

    def coin(self, fault: LinkFault, edge: DirectedEdge, t: float) -> bool:
        """Does a probabilistic fault fire on this slot?  Deterministic
        in (plan seed, fault, edge, time)."""
        if fault.probability >= 1.0:
            return True
        rng = random.Random(
            f"{self.plan.seed}:{fault.kind}:{edge!r}:{t}:{fault.start}"
        )
        return rng.random() < fault.probability

    def corrupted(self, message: Any, edge: DirectedEdge, t: float) -> Any:
        """A deterministic replacement value different from ``message``
        whenever the pool allows one."""
        rng = random.Random(f"{self.plan.seed}:corrupt:{edge!r}:{t}")
        choices = [v for v in self.plan.corrupt_pool if v != message]
        if not choices:
            return ("corrupted", message)
        return rng.choice(choices)


class SyncFaultInjector:
    """Interposes on the synchronous executor's per-round message slots.

    The executor calls :meth:`deliver` once per directed edge per round,
    in a fixed order; the injector returns what the receiver actually
    sees in that slot.  Semantics, in priority order:

    1. an active partition drops the slot;
    2. link faults on the edge apply in plan order — the first drop /
       omission / delay consumes the message, corruption rewrites it
       and continues;
    3. a delayed message due this round preempts the slot (the stale
       packet wins; the fresh one is recorded as ``preempt``-dropped).

    Delays are whole rounds; a message delayed past the run's horizon
    is silently lost (its ``delay`` record still shows the send).
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._index = _PlanIndex(plan)
        self._pending: dict[DirectedEdge, dict[int, list[Any]]] = {}
        self.trace = InjectionTrace()

    @property
    def plan(self) -> FaultPlan:
        return self._index.plan

    def deliver(
        self, edge: DirectedEdge, round_index: int, message: Any
    ) -> Any:
        candidate = message
        if candidate is not None:
            if self._index.partition_active(edge, round_index):
                self.trace.append(
                    InjectionRecord(
                        round_index, edge, "partition", candidate, None
                    )
                )
                candidate = None
            else:
                for fault in self._index.faults_by_edge.get(edge, ()):
                    if not fault.active_at(round_index):
                        continue
                    if not self._index.coin(fault, edge, round_index):
                        continue
                    if fault.kind in ("drop", "omit"):
                        self.trace.append(
                            InjectionRecord(
                                round_index, edge, "drop", candidate, None
                            )
                        )
                        candidate = None
                        break
                    if fault.kind == "delay":
                        due = round_index + int(fault.delay)
                        self._pending.setdefault(edge, {}).setdefault(
                            due, []
                        ).append(candidate)
                        self.trace.append(
                            InjectionRecord(
                                round_index, edge, "delay", candidate, due
                            )
                        )
                        candidate = None
                        break
                    if fault.kind == "corrupt":
                        replacement = self._index.corrupted(
                            candidate, edge, round_index
                        )
                        self.trace.append(
                            InjectionRecord(
                                round_index,
                                edge,
                                "corrupt",
                                candidate,
                                replacement,
                            )
                        )
                        candidate = replacement
        due_now = self._pending.get(edge, {}).pop(round_index, None)
        if due_now:
            delayed = due_now[0]
            for lost in due_now[1:]:
                self.trace.append(
                    InjectionRecord(round_index, edge, "preempt", lost, None)
                )
            if candidate is not None:
                self.trace.append(
                    InjectionRecord(
                        round_index, edge, "preempt", candidate, None
                    )
                )
            self.trace.append(
                InjectionRecord(
                    round_index, edge, "deliver-delayed", delayed, delayed
                )
            )
            return delayed
        return candidate


class TimedFaultInjector:
    """Interposes on the timed executor's sends.

    :meth:`on_send` is consulted once per send (scripted or live) and
    returns ``(deliver, message, arrival)``; a dropped send never
    schedules a delivery.  Windows are real-time intervals on the
    *send* time; delays add real time to the arrival.
    """

    def __init__(self, plan: FaultPlan) -> None:
        self._index = _PlanIndex(plan)
        self.trace = InjectionTrace()

    @property
    def plan(self) -> FaultPlan:
        return self._index.plan

    def on_send(
        self, edge: DirectedEdge, time: float, message: Any, arrival: float
    ) -> tuple[bool, Any, float]:
        if self._index.partition_active(edge, time):
            self.trace.append(
                InjectionRecord(time, edge, "partition", message, None)
            )
            return (False, message, arrival)
        for fault in self._index.faults_by_edge.get(edge, ()):
            if not fault.active_at(time):
                continue
            if not self._index.coin(fault, edge, time):
                continue
            if fault.kind in ("drop", "omit"):
                self.trace.append(
                    InjectionRecord(time, edge, "drop", message, None)
                )
                return (False, message, arrival)
            if fault.kind == "delay":
                arrival = arrival + fault.delay
                self.trace.append(
                    InjectionRecord(time, edge, "delay", message, arrival)
                )
            elif fault.kind == "corrupt":
                replacement = self._index.corrupted(message, edge, time)
                self.trace.append(
                    InjectionRecord(time, edge, "corrupt", message, replacement)
                )
                message = replacement
        return (True, message, arrival)


__all__ = [
    "FAULT_KINDS",
    "FaultPlan",
    "InjectionRecord",
    "InjectionTrace",
    "LinkFault",
    "Partition",
    "SyncFaultInjector",
    "TimedFaultInjector",
    "partition_between",
]
