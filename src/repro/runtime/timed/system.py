"""Timed systems: graph + per-node device factory, input, hardware
clock, and port labeling + a message-delay policy.

Two delay policies cover the paper's two timed settings:

* ``"real"`` — every message arrives exactly ``delay`` time units
  after it is sent.  This realizes the Bounded-Delay Locality axiom
  with ``δ = delay`` (Sections 4–5).
* ``"clock"`` — a message sent when the sender's hardware clock reads
  ``x`` arrives when it reads ``x + delay``.  Every time-dependent
  aspect of the system is then a function of hardware clock states,
  which is exactly the premise of the Scaling axiom (Section 7).
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from functools import cached_property
from typing import Any, Literal

from ...graphs.coverings import CoveringMap
from ...graphs.graph import CommunicationGraph, GraphError, NodeId
from .clocks import ClockFunction, identity
from .device import DeviceFactory, PortLabel, TimedContext


@dataclass(frozen=True)
class TimedNodeAssignment:
    """Device factory, input, hardware clock and ports for one node."""

    factory: DeviceFactory
    input: Any
    port_of_neighbor: Mapping[NodeId, PortLabel]
    clock: ClockFunction = field(default_factory=identity)

    def context(self) -> TimedContext:
        return TimedContext(
            ports=tuple(self.port_of_neighbor.values()), input=self.input
        )

    @cached_property
    def neighbor_of_port(self) -> Mapping[PortLabel, NodeId]:
        """The reverse of ``port_of_neighbor``, built once per
        assignment."""
        return {
            port: neighbor
            for neighbor, port in self.port_of_neighbor.items()
        }


@dataclass(frozen=True)
class TimedSystem:
    """A fully specified timed system."""

    graph: CommunicationGraph
    assignments: Mapping[NodeId, TimedNodeAssignment]
    delay: float = 1.0
    delay_mode: Literal["real", "clock"] = "real"

    def __post_init__(self) -> None:
        if self.delay <= 0:
            raise GraphError("the minimum delay δ must be positive")
        for u in self.graph.nodes:
            if u not in self.assignments:
                raise GraphError(f"node {u!r} has no assignment")
            labeled = set(self.assignments[u].port_of_neighbor)
            if labeled != set(self.graph.neighbors(u)):
                raise GraphError(f"port labeling of {u!r} mismatches graph")
            labels = list(self.assignments[u].port_of_neighbor.values())
            if len(set(labels)) != len(labels):
                raise GraphError(f"port labels of {u!r} are not distinct")

    def context(self, u: NodeId) -> TimedContext:
        return self.assignments[u].context()

    def clock(self, u: NodeId) -> ClockFunction:
        return self.assignments[u].clock

    def port(self, u: NodeId, neighbor: NodeId) -> PortLabel:
        return self.assignments[u].port_of_neighbor[neighbor]

    def neighbor_of_port(self, u: NodeId, label: PortLabel) -> NodeId:
        try:
            return self.assignments[u].neighbor_of_port[label]
        except KeyError:
            raise GraphError(
                f"node {u!r} has no port labeled {label!r}"
            ) from None

    def with_factories(
        self, replacements: Mapping[NodeId, DeviceFactory]
    ) -> "TimedSystem":
        new = dict(self.assignments)
        for u, factory in replacements.items():
            old = new[u]
            new[u] = TimedNodeAssignment(
                factory=factory,
                input=old.input,
                port_of_neighbor=old.port_of_neighbor,
                clock=old.clock,
            )
        return TimedSystem(self.graph, new, self.delay, self.delay_mode)

    def scaled(self, h: ClockFunction) -> "TimedSystem":
        """The system ``Sh``: every hardware clock scaled by ``h``.

        Requires ``delay_mode == "clock"`` — otherwise real-time delays
        would not scale and the Scaling axiom would fail (which is the
        paper's own caveat: bounding transmission delay in real time
        makes synchronization possible).
        """
        if self.delay_mode != "clock":
            raise GraphError(
                "scaling requires clock-based delays (delay_mode='clock')"
            )
        new = {
            u: TimedNodeAssignment(
                factory=a.factory,
                input=a.input,
                port_of_neighbor=a.port_of_neighbor,
                clock=h.then(a.clock),
            )
            for u, a in self.assignments.items()
        }
        return TimedSystem(self.graph, new, self.delay, self.delay_mode)


def make_timed_system(
    graph: CommunicationGraph,
    factories: Mapping[NodeId, DeviceFactory],
    inputs: Mapping[NodeId, Any],
    delay: float = 1.0,
    delay_mode: Literal["real", "clock"] = "real",
    clocks: Mapping[NodeId, ClockFunction] | None = None,
) -> TimedSystem:
    """A timed system with identity port labels."""
    clocks = clocks or {}
    assignments = {
        u: TimedNodeAssignment(
            factory=factories[u],
            input=inputs[u],
            port_of_neighbor={v: v for v in graph.neighbors(u)},
            clock=clocks.get(u, identity()),
        )
        for u in graph.nodes
    }
    return TimedSystem(graph, assignments, delay, delay_mode)


def install_in_covering_timed(
    covering: CoveringMap,
    base_factories: Mapping[NodeId, DeviceFactory],
    cover_inputs: Mapping[NodeId, Any],
    delay: float = 1.0,
    delay_mode: Literal["real", "clock"] = "real",
    cover_clocks: Mapping[NodeId, ClockFunction] | None = None,
) -> TimedSystem:
    """Install base-node device factories in a covering graph, with
    ports labeled by the covering map (as in the synchronous model)."""
    base = covering.base
    cover = covering.cover
    cover_clocks = cover_clocks or {}
    assignments = {}
    for u in cover.nodes:
        if u not in cover_inputs:
            raise GraphError(f"no input supplied for covering node {u!r}")
        ports = {
            covering.lift_neighbor(u, w): w
            for w in base.neighbors(covering(u))
        }
        assignments[u] = TimedNodeAssignment(
            factory=base_factories[covering(u)],
            input=cover_inputs[u],
            port_of_neighbor=ports,
            clock=cover_clocks.get(u, identity()),
        )
    return TimedSystem(cover, assignments, delay, delay_mode)
