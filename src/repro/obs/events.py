"""Typed, timestamped structured events and the telemetry core.

FLM's proof technique is retrospective — cut a scenario out of a
recorded execution and replay it — yet until this subsystem our own
runs were opaque: counters lived in half a dozen objects and nothing
recorded *what a campaign actually did*.  This module is the core of
``repro.obs``: a process-wide telemetry switch, a bounded ring buffer
of structured events, and the capture/replay machinery that makes
traces **deterministic across worker counts**.

Design rules
------------
* **Off by default, near-zero when off.**  All emission funnels through
  :func:`emit`, which returns after one attribute check when telemetry
  is disabled.  Hot loops (the executors) additionally hoist a single
  :func:`is_enabled` check per call so the per-round/per-edge cost of
  disabled telemetry is a pointer comparison.
* **Two scopes.**  ``run``-scope events describe the *execution itself*
  (rounds, deliveries, injections, attempts, spans) and are a pure
  function of the workload — the same campaign emits the same
  ``run``-scope stream whether it executed serially, under ``--jobs
  N``, through the behavior cache, or through the execution trie.
  ``host``-scope events (:data:`HOST_KINDS`) describe *this process's*
  optimization luck — cache hits, trie replays, worker pools — and are
  excluded from exported traces, which is what makes trace files
  byte-identical across ``--jobs`` settings.
* **Logical time.**  Events carry a monotonic sequence number and
  model-level timestamps (round index, simulated time), never wall
  time — wall time lives in the tracer's host-side span aggregates.
* **Capture/replay.**  :func:`capture` redirects emission into a
  picklable capsule; :func:`replay` appends a capsule to the active
  sink, re-stamping sequence numbers.  Fork-based workers capture each
  item's events and ship them back to the parent, which replays them
  in item-index order — reproducing the serial event stream exactly.
"""

from __future__ import annotations

from collections import deque
from contextlib import contextmanager
from dataclasses import dataclass
from typing import Any, Iterator

# -- event taxonomy --------------------------------------------------------

# run scope: deterministic given the workload.
ROUND_START = "round_start"
ROUND_END = "round_end"
MESSAGE_DELIVERY = "message_delivery"
FAULT_INJECTION = "fault_injection"
TIMED_EVENT = "timed_event"
ATTEMPT_START = "attempt_start"
ATTEMPT_END = "attempt_end"
ORBIT_REUSE = "orbit_reuse"
SHRINK_STEP = "shrink_step"
FRONTIER_LEVEL = "frontier_level"
SWEEP_POINT = "sweep_point"
SPAN_START = "span_start"
SPAN_END = "span_end"

# host scope: process-local optimization/lifecycle facts.  Excluded
# from exported traces (and from cached-attempt replay payloads), so
# the deterministic stream never depends on which process got lucky.
# Checkpoint/resume facts live here too: whether an item was journaled
# by an earlier process must not change the exported trace.
CACHE_HIT = "cache_hit"
CACHE_MISS = "cache_miss"
TRIE_REPLAY = "trie_replay"
WORKER_POOL = "worker_pool"
WORKER_MERGE = "worker_merge"
WORKER_RETRY = "worker_retry"
CHECKPOINT_WRITE = "checkpoint_write"
CHECKPOINT_REUSE = "checkpoint_reuse"

HOST_KINDS = frozenset(
    {
        CACHE_HIT,
        CACHE_MISS,
        TRIE_REPLAY,
        WORKER_POOL,
        WORKER_MERGE,
        WORKER_RETRY,
        CHECKPOINT_WRITE,
        CHECKPOINT_REUSE,
    }
)

RUN_KINDS = frozenset(
    {
        ROUND_START,
        ROUND_END,
        MESSAGE_DELIVERY,
        FAULT_INJECTION,
        TIMED_EVENT,
        ATTEMPT_START,
        ATTEMPT_END,
        ORBIT_REUSE,
        SHRINK_STEP,
        FRONTIER_LEVEL,
        SWEEP_POINT,
        SPAN_START,
        SPAN_END,
    }
)


@dataclass(frozen=True, slots=True)
class Event:
    """One structured telemetry event.

    ``seq`` is the position in the run's logical timeline (assigned
    when the event reaches the main log — capsule replay re-stamps);
    ``kind`` is one of the module's kind constants; ``fields`` is a
    canonically sorted tuple of ``(name, value)`` pairs whose values
    are JSON scalars.
    """

    seq: int
    kind: str
    fields: tuple[tuple[str, Any], ...]

    @property
    def scope(self) -> str:
        return "host" if self.kind in HOST_KINDS else "run"

    def field_dict(self) -> dict[str, Any]:
        return dict(self.fields)

    def to_jsonable(self) -> dict[str, Any]:
        data: dict[str, Any] = {"type": "event", "seq": self.seq,
                                "kind": self.kind}
        data.update(self.fields)
        return data

    def describe(self) -> str:
        parts = " ".join(f"{k}={v!r}" for k, v in self.fields)
        return f"#{self.seq} {self.kind} {parts}".rstrip()


class EventLog:
    """Two bounded ring buffers of events, one per scope.

    Run-scope and host-scope events live in **separate streams with
    separate sequence counters**: a cache hit or worker-pool event must
    not consume a run sequence number, or the deterministic stream
    would renumber depending on process-local luck.  ``seq`` is the
    run-stream counter (what the trace's sequence numbers come from);
    host events count on ``host_seq``.

    Each ring holds the most recent ``capacity`` events of its scope;
    per-kind totals and the counters keep counting past evictions, and
    ``dropped`` reports how many run events fell off the front
    (recorded in the trace's meta line, so a truncated trace says so).
    """

    __slots__ = (
        "capacity",
        "_events",
        "_host_events",
        "seq",
        "host_seq",
        "kind_counts",
    )

    def __init__(self, capacity: int = 131072) -> None:
        if capacity <= 0:
            raise ValueError("capacity must be positive")
        self.capacity = capacity
        self._events: deque[Event] = deque(maxlen=capacity)
        self._host_events: deque[Event] = deque(maxlen=capacity)
        self.seq = 0
        self.host_seq = 0
        self.kind_counts: dict[str, int] = {}

    def append(self, kind: str, fields: tuple[tuple[str, Any], ...]) -> Event:
        if kind in HOST_KINDS:
            event = Event(seq=self.host_seq, kind=kind, fields=fields)
            self.host_seq += 1
            self._host_events.append(event)
        else:
            event = Event(seq=self.seq, kind=kind, fields=fields)
            self.seq += 1
            self._events.append(event)
        self.kind_counts[kind] = self.kind_counts.get(kind, 0) + 1
        return event

    @property
    def dropped(self) -> int:
        return self.seq - len(self._events)

    @property
    def host_dropped(self) -> int:
        return self.host_seq - len(self._host_events)

    def __len__(self) -> int:
        return len(self._events) + len(self._host_events)

    def __iter__(self) -> Iterator[Event]:
        yield from self._events
        yield from self._host_events

    def events(self, scope: str | None = None) -> list[Event]:
        if scope is None:
            return list(self)
        if scope == "host":
            return list(self._host_events)
        return list(self._events)


class Capsule:
    """A captured slice of the event stream (one work item's worth).

    Holds ``(kind, fields)`` pairs — no sequence numbers, those are
    assigned at replay — and is picklable, so forked workers can ship
    it back to the parent over the pool's result pipe.
    """

    __slots__ = ("items", "run_len")

    def __init__(self) -> None:
        self.items: list[tuple[str, tuple[tuple[str, Any], ...]]] = []
        self.run_len = 0

    def append(self, kind: str, fields: tuple[tuple[str, Any], ...]) -> None:
        self.items.append((kind, fields))
        if kind not in HOST_KINDS:
            self.run_len += 1

    def payload(self) -> tuple[tuple[str, tuple[tuple[str, Any], ...]], ...]:
        return tuple(self.items)

    def run_payload(
        self,
    ) -> tuple[tuple[str, tuple[tuple[str, Any], ...]], ...]:
        """The payload with host-scope events stripped — what a cached
        result stores, so replaying a hit reproduces exactly the
        deterministic stream of the original execution."""
        return tuple(
            (kind, fields)
            for kind, fields in self.items
            if kind not in HOST_KINDS
        )


Payload = tuple  # alias for annotations in other modules


class _TelemetryState:
    __slots__ = ("enabled", "log", "registry", "tracer", "sinks")

    def __init__(self) -> None:
        self.enabled = False
        self.log: EventLog | None = None
        self.registry = None  # MetricsRegistry, created on enable()
        self.tracer = None  # Tracer, created on enable()
        self.sinks: list[Capsule] = []


_STATE = _TelemetryState()


def enable(capacity: int = 131072) -> None:
    """Turn telemetry on with a fresh log, registry and tracer.

    Idempotent in effect but not in state: calling it again starts a
    fresh recording (the previous log is dropped).
    """
    from .metrics import MetricsRegistry
    from .tracer import Tracer

    _STATE.log = EventLog(capacity)
    _STATE.registry = MetricsRegistry()
    _STATE.tracer = Tracer()
    _STATE.sinks = []
    _STATE.enabled = True


def disable() -> None:
    """Stop recording; the log/registry/tracer stay readable until
    :func:`reset` or the next :func:`enable`."""
    _STATE.enabled = False


def reset() -> None:
    """Disable telemetry and drop all recorded state."""
    _STATE.enabled = False
    _STATE.log = None
    _STATE.registry = None
    _STATE.tracer = None
    _STATE.sinks = []


def is_enabled() -> bool:
    return _STATE.enabled


def get_log() -> EventLog | None:
    return _STATE.log


def get_registry():
    return _STATE.registry


def get_tracer():
    return _STATE.tracer


def _append_main(kind: str, fields: tuple[tuple[str, Any], ...]) -> None:
    state = _STATE
    state.log.append(kind, fields)
    state.registry.record_event(kind, fields)


def emit(kind: str, **fields: Any) -> None:
    """Emit one event (no-op when telemetry is disabled).

    Field values must be JSON scalars (str/int/float/bool/None); field
    order is canonicalized, so equal calls yield equal events.
    """
    state = _STATE
    if not state.enabled:
        return
    canonical = tuple(sorted(fields.items()))
    if state.sinks:
        state.sinks[-1].append(kind, canonical)
    else:
        _append_main(kind, canonical)


_NULL_CAPSULE = Capsule()


@contextmanager
def capture() -> Iterator[Capsule]:
    """Redirect emission into a fresh :class:`Capsule`.

    Nestable: an inner capture's events stay out of the outer capsule
    until explicitly replayed.  When telemetry is disabled this yields
    a shared empty capsule and records nothing.
    """
    state = _STATE
    if not state.enabled:
        yield _NULL_CAPSULE
        return
    capsule = Capsule()
    state.sinks.append(capsule)
    try:
        yield capsule
    finally:
        state.sinks.pop()


def replay(payload) -> None:
    """Append a captured payload to the active sink (capsule or main
    log), re-stamping sequence numbers.  No-op when disabled or for
    empty payloads."""
    state = _STATE
    if not state.enabled or not payload:
        return
    if state.sinks:
        sink = state.sinks[-1]
        for kind, fields in payload:
            sink.append(kind, fields)
    else:
        for kind, fields in payload:
            _append_main(kind, fields)


def observe_span(name: str, seconds: float) -> None:
    """Record a wall-time observation against span ``name`` without
    emitting span events (host-side aggregate only).  No-op when
    disabled."""
    state = _STATE
    if state.enabled:
        state.tracer.observe(name, seconds)


__all__ = [
    "ATTEMPT_END",
    "ATTEMPT_START",
    "CACHE_HIT",
    "CACHE_MISS",
    "CHECKPOINT_REUSE",
    "CHECKPOINT_WRITE",
    "Capsule",
    "Event",
    "EventLog",
    "FAULT_INJECTION",
    "FRONTIER_LEVEL",
    "HOST_KINDS",
    "MESSAGE_DELIVERY",
    "ORBIT_REUSE",
    "ROUND_END",
    "ROUND_START",
    "RUN_KINDS",
    "SHRINK_STEP",
    "SPAN_END",
    "SPAN_START",
    "SWEEP_POINT",
    "TIMED_EVENT",
    "TRIE_REPLAY",
    "WORKER_MERGE",
    "WORKER_POOL",
    "WORKER_RETRY",
    "capture",
    "disable",
    "emit",
    "enable",
    "get_log",
    "get_registry",
    "get_tracer",
    "is_enabled",
    "observe_span",
    "replay",
    "reset",
]
