"""Campaign engine: finds violations under combined budgets, shrinks
them to minimal plans, replays deterministically, and sweeps the
graceful-degradation frontier."""

import json


from repro.analysis.campaign import (
    CampaignConfig,
    counterexample_from_dict,
    counterexample_to_dict,
    degradation_frontier,
    execute_attempt,
    replay_counterexample,
    run_campaign,
    sample_fault_plan,
    shrink_counterexample,
)
from repro.analysis.witness_io import campaign_to_dict, save_campaign
from repro.graphs import complete_graph
from repro.protocols import MajorityVoteDevice, eig_devices
from repro.runtime.sync import make_system, run


def naive_config(**overrides):
    defaults = dict(
        graph=complete_graph(4),
        device_factory=lambda g: {u: MajorityVoteDevice() for u in g.nodes},
        rounds=2,
        max_node_faults=0,
        max_link_faults=2,
        attempts=60,
        seed=0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


def eig_config(**overrides):
    defaults = dict(
        graph=complete_graph(4),
        device_factory=lambda g: eig_devices(g, 1),
        rounds=2,
        max_node_faults=1,
        max_link_faults=0,
        attempts=30,
        seed=0,
    )
    defaults.update(overrides)
    return CampaignConfig(**defaults)


class TestCampaign:
    def test_naive_breaks_and_shrinks_to_minimal_plan(self):
        result = run_campaign(naive_config())
        assert result.broken
        shrunk = result.shrunk
        assert shrunk is not None
        assert shrunk.cost <= result.found.cost
        assert not shrunk.verdict.ok
        # 1-minimality: removing any remaining atom heals the run.
        config = naive_config()
        for i in range(shrunk.plan.size):
            _, verdict, _ = execute_attempt(
                config,
                shrunk.inputs,
                shrunk.node_faults,
                shrunk.plan.without_atoms([i]),
            )
            assert verdict.ok

    def test_replay_is_deterministic(self):
        config = naive_config()
        result = run_campaign(config)
        assert result.broken
        b1, v1, t1 = replay_counterexample(config, result.shrunk)
        b2, v2, t2 = replay_counterexample(config, result.shrunk)
        assert t1 == t2 == result.injection_trace
        assert v1.describe() == v2.describe()
        assert dict(b1.edge_behaviors) == dict(b2.edge_behaviors)

    def test_same_seed_same_campaign(self):
        r1 = run_campaign(naive_config())
        r2 = run_campaign(naive_config())
        assert r1.shrunk == r2.shrunk
        assert r1.attempts == r2.attempts
        assert r1.injection_trace == r2.injection_trace

    def test_eig_survives_within_its_fault_budget(self):
        result = run_campaign(eig_config())
        assert not result.broken

    def test_node_faults_alone_break_naive(self):
        config = naive_config(max_node_faults=1, max_link_faults=0)
        result = run_campaign(config)
        assert result.broken
        # With no link budget the shrunk plan must be node-only.
        assert result.shrunk.plan.is_trivial()
        assert len(result.shrunk.node_faults) == 1

    def test_shrink_removes_redundant_atoms(self):
        config = naive_config(max_link_faults=4, attempts=40)
        result = run_campaign(config)
        assert result.broken
        shrunk, steps = shrink_counterexample(config, result.found)
        assert steps == result.shrink_steps
        assert shrunk == result.shrunk
        assert not shrunk.verdict.ok


class TestFaultFreeEquivalence:
    def test_campaign_machinery_never_perturbs_clean_runs(self):
        """Acceptance check: a fault-free execution through the campaign
        entry point is byte-identical to the plain executor."""
        config = naive_config()
        graph = config.graph
        inputs = {u: 1 for u in graph.nodes}
        plain = run(
            make_system(graph, dict(config.device_factory(graph)), inputs),
            config.rounds,
        )
        from repro.runtime.faults import FaultPlan

        behavior, verdict, trace = execute_attempt(
            config, inputs, (), FaultPlan()
        )
        assert verdict.ok
        assert len(trace) == 0
        assert dict(behavior.node_behaviors) == dict(plain.node_behaviors)
        assert dict(behavior.edge_behaviors) == dict(plain.edge_behaviors)


class TestSampling:
    def test_sampled_plans_respect_budget(self):
        import random

        graph = complete_graph(5)
        for attempt in range(30):
            rng = random.Random(attempt)
            plan = sample_fault_plan(graph, 3, 4, rng)
            assert len(plan.faulty_edges()) <= 4

    def test_zero_budget_samples_trivial_plan(self):
        import random

        plan = sample_fault_plan(complete_graph(4), 3, 0, random.Random(1))
        assert plan.is_trivial()


class TestFrontier:
    def test_frontier_orders_clauses_by_budget(self):
        config = naive_config(attempts=40)
        frontier = degradation_frontier(config, max_link_faults=2)
        assert len(frontier.rows) == 3
        # Budget zero with f=0 cannot break anything.
        assert frontier.rows[0].broken_conditions == ()
        # Naive majority loses agreement within the sweep.
        assert frontier.first_break["agreement"] is not None
        assert "agreement" in frontier.describe()


class TestPersistence:
    def test_counterexample_roundtrip(self):
        config = naive_config()
        result = run_campaign(config)
        assert result.broken
        data = counterexample_to_dict(result.shrunk)
        rebuilt = counterexample_from_dict(
            json.loads(json.dumps(data)), config.graph
        )
        assert rebuilt.plan == result.shrunk.plan
        assert rebuilt.node_faults == result.shrunk.node_faults
        assert rebuilt.inputs == dict(result.shrunk.inputs)
        _, verdict, trace = replay_counterexample(config, rebuilt)
        assert verdict.describe() == result.shrunk.verdict.describe()
        assert trace == result.injection_trace

    def test_save_campaign_writes_replayable_json(self, tmp_path):
        config = naive_config()
        result = run_campaign(config)
        path = save_campaign(result, tmp_path / "campaign.json")
        data = json.loads(path.read_text())
        assert data["broken"] is True
        assert data["shrunk"]["plan"]
        rebuilt = counterexample_from_dict(data["shrunk"], config.graph)
        _, verdict, _ = replay_counterexample(config, rebuilt)
        assert not verdict.ok

    def test_surviving_campaign_serializes_cleanly(self):
        result = run_campaign(eig_config())
        data = campaign_to_dict(result)
        assert data["broken"] is False
        assert data["found"] is None


class TestCrashReporting:
    def test_crashing_device_reported_as_execution_violation(self):
        class Fragile(MajorityVoteDevice):
            def transition(self, ctx, state, round_index, inbox):
                for value in inbox.values():
                    if value == "poison":
                        raise RuntimeError("device choked")
                return super().transition(ctx, state, round_index, inbox)

        from repro.runtime.faults import FaultPlan, LinkFault

        graph = complete_graph(3)
        config = CampaignConfig(
            graph=graph,
            device_factory=lambda g: {u: Fragile() for u in g.nodes},
            rounds=2,
        )
        plan = FaultPlan(
            link_faults=(LinkFault(("n0", "n1"), "corrupt"),),
            corrupt_pool=("poison",),
        )
        inputs = {u: 1 for u in graph.nodes}
        _, verdict, _ = execute_attempt(config, inputs, (), plan)
        assert not verdict.ok
        assert verdict.violations[0].condition == "execution"
