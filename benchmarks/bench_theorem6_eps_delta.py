"""T6 — Theorem 6, (ε, δ, γ)-agreement (Section 6.2).

Regenerates: the (k+2)-ring figure with inputs i·δ and the Lemma 7
drift table (chosen values capped at δ+γ+iε from the left, forced
above kδ-γ from the right), for several (ε, δ, γ) combinations.
"""

import pytest
from conftest import report

from repro.analysis import format_table
from repro.core import refute_epsilon_delta, ring_size_for_epsilon_delta
from repro.graphs import triangle
from repro.protocols import MedianDevice, MidpointDevice


def test_median_devices(benchmark):
    devices = {u: MedianDevice() for u in triangle().nodes}
    witness = benchmark(
        lambda: refute_epsilon_delta(
            devices, epsilon=0.25, delta=1.0, gamma=1.0, rounds=3
        )
    )
    assert witness.found
    table = format_table(
        ("node", "input", "chosen", "Lemma 7 cap", "validity floor"),
        [
            (
                r["node"],
                r["input"],
                r["chosen"],
                r["lemma7_upper_bound"],
                r["validity_lower_bound"],
            )
            for r in witness.extra["lemma7"]
        ],
        f"Lemma 7 drift on the (k+2)-ring, k = {witness.extra['k']}",
    )
    report("T6: (ε,δ,γ)-agreement", table)
    # Shape: somewhere the chosen value must exceed the Lemma 7 cap or
    # dip under the validity floor — i.e. a scenario is violated.
    assert len(witness.violated) >= 1


@pytest.mark.parametrize(
    "epsilon,delta,gamma",
    [(0.5, 1.0, 0.5), (0.1, 1.0, 0.2), (0.9, 1.0, 2.0)],
)
def test_parameter_sweep(benchmark, epsilon, delta, gamma):
    devices = {u: MidpointDevice() for u in triangle().nodes}
    witness = benchmark(
        lambda: refute_epsilon_delta(
            devices, epsilon=epsilon, delta=delta, gamma=gamma, rounds=3
        )
    )
    assert witness.found
    k = witness.extra["k"]
    assert delta > 2 * gamma / (k - 1) + epsilon  # the paper's condition
    benchmark.extra_info["k"] = k


def test_ring_size_growth():
    # Tighter ε→δ gaps need longer rings: k ~ 2γ/(δ-ε).
    small_gap = ring_size_for_epsilon_delta(0.9, 1.0, 1.0)
    large_gap = ring_size_for_epsilon_delta(0.1, 1.0, 1.0)
    assert small_gap > large_gap


def test_connectivity_variant_on_the_diamond(benchmark):
    """Theorem 6's connectivity bound via the cyclic cover of the
    diamond (valid for ε < δ/2; see the engine's docstring)."""
    from repro.core import refute_epsilon_delta_connectivity
    from repro.graphs import diamond

    g = diamond()
    witness = benchmark(
        lambda: refute_epsilon_delta_connectivity(
            g,
            {u: MedianDevice() for u in g.nodes},
            max_faults=1,
            epsilon=0.25,
            delta=1.0,
            gamma=1.0,
            rounds=3,
        )
    )
    assert witness.found
    assert any(c.label.startswith("B") for c in witness.violated)
