"""Deterministic adversary campaigns with counterexample shrinking.

A *campaign* stresses a protocol under a **combined** fault budget: up
to ``f`` faulty nodes (the existing Byzantine strategy devices) plus up
to ``k`` faulty links (a sampled :class:`~repro.runtime.faults.
FaultPlan`).  Each attempt is deterministic given ``(seed, attempt)``;
on a specification violation the failing configuration is shrunk
delta-debugging-style — greedily deleting fault atoms and faulty nodes
while the violation persists — down to a minimal counterexample that
replays exactly (same seed ⇒ identical injection trace).

The second half is *graceful-degradation* reporting: sweep the link
budget upward and record, per spec clause (agreement / validity /
termination), the first budget at which it breaks.  Together these grow
the repo from "the theorems' constructions" toward "as many failure
scenarios as you can imagine", with every run replayable.
"""

from __future__ import annotations

import random
from collections.abc import Callable, Mapping, Sequence
from dataclasses import dataclass, field
from typing import Any

from ..graphs.graph import CommunicationGraph, DirectedEdge, NodeId
from ..problems.byzantine import ByzantineAgreementSpec
from ..problems.spec import SpecVerdict, Violation
from ..runtime.faults import (
    FaultPlan,
    InjectionTrace,
    LinkFault,
    Partition,
    SyncFaultInjector,
    partition_between,
)
from ..runtime.sync.behavior import SyncBehavior
from ..runtime.sync.device import SyncDevice
from ..runtime.sync.executor import run
from ..runtime.sync.system import make_system
from .adversary_search import STRATEGIES, build_adversary

DeviceFactory = Callable[[CommunicationGraph], Mapping[NodeId, SyncDevice]]

#: Link-fault kinds sampled by default.  All four primitives plus
#: partitions; corruption draws replacements from the value pool, which
#: well-formed protocols (e.g. EIG) must already tolerate from
#: Byzantine senders.
DEFAULT_LINK_KINDS = ("drop", "corrupt", "delay", "omit", "partition")

SPEC_CONDITIONS = ("agreement", "validity", "termination")


@dataclass(frozen=True)
class NodeFault:
    """One faulty node in a campaign attempt.  ``key`` seeds the
    strategy's private randomness, so the device can be rebuilt
    bit-identically during shrinking and replay."""

    node: NodeId
    kind: str
    key: str

    def describe(self) -> str:
        return f"{self.node}={self.kind}"


@dataclass(frozen=True)
class CampaignConfig:
    """Everything a campaign needs to run — and to be re-run."""

    graph: CommunicationGraph
    device_factory: DeviceFactory
    rounds: int
    max_node_faults: int = 0
    max_link_faults: int = 1
    attempts: int = 100
    seed: int = 0
    value_pool: tuple[Any, ...] = (0, 1)
    link_kinds: tuple[str, ...] = DEFAULT_LINK_KINDS
    spec: ByzantineAgreementSpec = field(default_factory=ByzantineAgreementSpec)

    def __post_init__(self) -> None:
        for name in ("max_node_faults", "max_link_faults", "attempts"):
            if getattr(self, name) < 0:
                raise ValueError(f"{name} must be non-negative")


@dataclass(frozen=True)
class Counterexample:
    """One failing configuration: inputs, faulty nodes, fault plan."""

    inputs: Mapping[NodeId, Any]
    node_faults: tuple[NodeFault, ...]
    plan: FaultPlan
    verdict: SpecVerdict
    attempt: int

    @property
    def cost(self) -> tuple[int, int]:
        """(faulty nodes, fault-plan atoms) — the shrinker minimizes
        this lexicographically by deletion."""
        return (len(self.node_faults), self.plan.size)

    def describe(self) -> str:
        nodes = (
            ", ".join(nf.describe() for nf in self.node_faults) or "none"
        )
        return (
            f"attempt {self.attempt}: faulty nodes [{nodes}]; "
            f"links: {self.plan.describe()}; "
            f"inputs {dict(self.inputs)}; {self.verdict.describe()}"
        )


@dataclass(frozen=True)
class CampaignResult:
    """Outcome of a campaign: the first violation found (if any), its
    shrunk form, and the shrunk replay's injection trace."""

    config: CampaignConfig
    attempts: int
    found: Counterexample | None
    shrunk: Counterexample | None
    shrink_steps: int = 0
    injection_trace: InjectionTrace | None = None

    @property
    def broken(self) -> bool:
        return self.found is not None

    def describe(self) -> str:
        if not self.broken:
            return (
                f"protocol survived {self.attempts} campaign attempts "
                f"(budget: {self.config.max_node_faults} nodes + "
                f"{self.config.max_link_faults} links)"
            )
        assert self.found is not None and self.shrunk is not None
        return (
            f"broken: {self.found.describe()}\n"
            f"shrunk ({self.shrink_steps} deletions): "
            f"{self.shrunk.describe()}"
        )


# -- deterministic sampling ------------------------------------------------


def _sample_link_fault(
    edge: DirectedEdge,
    kind: str,
    rounds: int,
    rng: random.Random,
) -> LinkFault:
    start = rng.randrange(rounds)
    end = rng.randrange(start + 1, rounds + 1)
    if kind == "delay":
        return LinkFault(
            edge, "delay", start, end, delay=rng.randrange(1, rounds + 1)
        )
    if kind == "omit":
        period = rng.randrange(2, max(3, rounds + 1))
        burst = rng.randrange(1, period)
        return LinkFault(edge, "omit", start, end, burst=burst, period=period)
    return LinkFault(edge, kind, start, end)


def sample_fault_plan(
    graph: CommunicationGraph,
    rounds: int,
    max_link_faults: int,
    rng: random.Random,
    kinds: Sequence[str] = DEFAULT_LINK_KINDS,
    seed: int = 0,
    value_pool: tuple[Any, ...] = (0, 1),
) -> FaultPlan:
    """Sample a fault plan touching at most ``max_link_faults`` links.

    A sampled partition spends its whole edge-cut against the link
    budget, so plans containing one are only drawn when the budget
    affords the cut.
    """
    edges = sorted(graph.edges, key=repr)
    budget = rng.randrange(max_link_faults + 1) if edges else 0
    link_faults: list[LinkFault] = []
    partitions: list[Partition] = []
    used: set[DirectedEdge] = set()
    for _ in range(8 * budget + 8):  # bounded draws: partitions may not fit
        if len(used) >= budget:
            break
        kind = rng.choice(tuple(kinds))
        if kind == "partition":
            side = rng.sample(
                sorted(graph.nodes, key=repr),
                rng.randrange(1, len(graph.nodes)),
            )
            start = rng.randrange(rounds)
            end = rng.randrange(start + 1, rounds + 1)
            cut = partition_between(graph, side, start, end)
            if not cut.edges or len(used | cut.edges) > budget:
                continue
            partitions.append(cut)
            used |= cut.edges
        else:
            candidates = [e for e in edges if e not in used]
            if not candidates:
                break
            edge = rng.choice(candidates)
            link_faults.append(_sample_link_fault(edge, kind, rounds, rng))
            used.add(edge)
    return FaultPlan(
        link_faults=tuple(link_faults),
        partitions=tuple(partitions),
        seed=seed,
        corrupt_pool=value_pool,
    )


def _sample_node_faults(
    config: CampaignConfig, attempt: int, rng: random.Random
) -> tuple[NodeFault, ...]:
    count = rng.randrange(config.max_node_faults + 1)
    nodes = rng.sample(sorted(config.graph.nodes, key=repr), count)
    return tuple(
        NodeFault(
            node=node,
            kind=rng.choice(STRATEGIES),
            key=f"{config.seed}:{attempt}:{node}",
        )
        for node in nodes
    )


# -- execution -------------------------------------------------------------


def execute_attempt(
    config: CampaignConfig,
    inputs: Mapping[NodeId, Any],
    node_faults: Sequence[NodeFault],
    plan: FaultPlan,
) -> tuple[SyncBehavior, SpecVerdict, InjectionTrace]:
    """Run one fully specified configuration and check the spec.

    This is the single entry point used by search, shrinking, replay
    and the frontier sweep, so all four see byte-identical executions.
    A device that crashes on injected garbage is itself a robustness
    finding and is reported as an ``execution`` violation rather than
    as a campaign error.
    """
    graph = config.graph
    devices = dict(config.device_factory(graph))
    for nf in node_faults:
        devices[nf.node] = build_adversary(
            nf.kind,
            nf.node,
            devices[nf.node],
            graph,
            config.rounds,
            random.Random(nf.key),
            config.value_pool,
        )
    injector = SyncFaultInjector(plan)
    system = make_system(graph, devices, dict(inputs))
    faulty_nodes = {nf.node for nf in node_faults}
    correct = [u for u in graph.nodes if u not in faulty_nodes]
    try:
        behavior = run(system, config.rounds, injector)
    except Exception as exc:  # devices choking on injected garbage
        verdict = SpecVerdict(
            (
                Violation(
                    "execution",
                    f"run crashed under injected faults: {exc}",
                    tuple(correct),
                ),
            )
        )
        empty = SyncBehavior(graph=graph, rounds=0)
        return (empty, verdict, injector.trace)
    verdict = config.spec.check(inputs, behavior.decisions(), correct)
    return (behavior, verdict, injector.trace)


def replay_counterexample(
    config: CampaignConfig, counterexample: Counterexample
) -> tuple[SyncBehavior, SpecVerdict, InjectionTrace]:
    """Re-run a counterexample exactly; deterministic by construction."""
    return execute_attempt(
        config,
        counterexample.inputs,
        counterexample.node_faults,
        counterexample.plan,
    )


# -- shrinking -------------------------------------------------------------


def shrink_counterexample(
    config: CampaignConfig, found: Counterexample
) -> tuple[Counterexample, int]:
    """Greedy delta debugging: repeatedly delete one fault atom or one
    faulty node while the spec still breaks; stop at a local minimum.

    Returns the minimal counterexample and the number of successful
    deletions.  The result is *1-minimal*: removing any single
    remaining fault makes the violation disappear.
    """
    current = found
    steps = 0
    progress = True
    while progress:
        progress = False
        for i in range(current.plan.size):
            candidate_plan = current.plan.without_atoms([i])
            _, verdict, _ = execute_attempt(
                config, current.inputs, current.node_faults, candidate_plan
            )
            if not verdict.ok:
                current = Counterexample(
                    inputs=current.inputs,
                    node_faults=current.node_faults,
                    plan=candidate_plan,
                    verdict=verdict,
                    attempt=current.attempt,
                )
                steps += 1
                progress = True
                break
        if progress:
            continue
        for i in range(len(current.node_faults)):
            candidate_nodes = (
                current.node_faults[:i] + current.node_faults[i + 1 :]
            )
            _, verdict, _ = execute_attempt(
                config, current.inputs, candidate_nodes, current.plan
            )
            if not verdict.ok:
                current = Counterexample(
                    inputs=current.inputs,
                    node_faults=candidate_nodes,
                    plan=current.plan,
                    verdict=verdict,
                    attempt=current.attempt,
                )
                steps += 1
                progress = True
                break
    return (current, steps)


# -- the campaign ----------------------------------------------------------


def run_campaign(config: CampaignConfig) -> CampaignResult:
    """Sample attempts under the combined budget until a spec violation
    appears (then shrink it) or the attempt budget is exhausted."""
    for attempt in range(1, config.attempts + 1):
        rng = random.Random(f"{config.seed}:{attempt}")
        node_faults = _sample_node_faults(config, attempt, rng)
        plan = sample_fault_plan(
            config.graph,
            config.rounds,
            config.max_link_faults,
            rng,
            kinds=config.link_kinds,
            seed=config.seed,
            value_pool=config.value_pool,
        )
        inputs = {
            u: rng.choice(config.value_pool)
            for u in sorted(config.graph.nodes, key=repr)
        }
        _, verdict, _ = execute_attempt(config, inputs, node_faults, plan)
        if not verdict.ok:
            found = Counterexample(
                inputs=inputs,
                node_faults=node_faults,
                plan=plan,
                verdict=verdict,
                attempt=attempt,
            )
            shrunk, steps = shrink_counterexample(config, found)
            _, _, trace = replay_counterexample(config, shrunk)
            return CampaignResult(
                config=config,
                attempts=attempt,
                found=found,
                shrunk=shrunk,
                shrink_steps=steps,
                injection_trace=trace,
            )
    return CampaignResult(
        config=config, attempts=config.attempts, found=None, shrunk=None
    )


# -- graceful degradation --------------------------------------------------


@dataclass(frozen=True)
class FrontierRow:
    """One budget level of a degradation sweep."""

    link_budget: int
    attempts: int
    broken_conditions: tuple[str, ...]
    example: Counterexample | None

    def as_tuple(self) -> tuple:
        return (
            self.link_budget,
            self.attempts,
            ", ".join(self.broken_conditions) or "-",
        )


FRONTIER_HEADERS = ("links", "attempts", "first-broken conditions")


@dataclass(frozen=True)
class DegradationFrontier:
    """Where each spec clause first breaks as the link budget grows."""

    rows: tuple[FrontierRow, ...]
    first_break: Mapping[str, int | None]

    def describe(self) -> str:
        lines = []
        for condition in sorted(self.first_break):
            budget = self.first_break[condition]
            if budget is None:
                lines.append(f"{condition}: never broken within the sweep")
            else:
                lines.append(f"{condition}: first broken at {budget} links")
        return "\n".join(lines)


def degradation_frontier(
    config: CampaignConfig,
    max_link_faults: int | None = None,
    attempts_per_level: int | None = None,
) -> DegradationFrontier:
    """Sweep the link budget 0..max and report, per spec clause, the
    smallest budget at which a campaign finds a violation of it."""
    max_links = (
        config.max_link_faults if max_link_faults is None else max_link_faults
    )
    attempts = (
        config.attempts if attempts_per_level is None else attempts_per_level
    )
    first_break: dict[str, int | None] = dict.fromkeys(SPEC_CONDITIONS)
    rows: list[FrontierRow] = []
    for budget in range(max_links + 1):
        level = CampaignConfig(
            graph=config.graph,
            device_factory=config.device_factory,
            rounds=config.rounds,
            max_node_faults=config.max_node_faults,
            max_link_faults=budget,
            attempts=attempts,
            seed=config.seed,
            value_pool=config.value_pool,
            link_kinds=config.link_kinds,
            spec=config.spec,
        )
        result = run_campaign(level)
        broken: tuple[str, ...] = ()
        if result.broken:
            assert result.shrunk is not None
            broken = tuple(
                dict.fromkeys(
                    v.condition for v in result.shrunk.verdict.violations
                )
            )
            for condition in broken:
                if first_break.get(condition) is None:
                    first_break[condition] = budget
        rows.append(
            FrontierRow(
                link_budget=budget,
                attempts=attempts,
                broken_conditions=broken,
                example=result.shrunk,
            )
        )
    return DegradationFrontier(
        rows=tuple(rows), first_break=first_break
    )


# -- persistence (one-command reproduction) --------------------------------


def counterexample_to_dict(ce: Counterexample) -> dict[str, Any]:
    return {
        "attempt": ce.attempt,
        "inputs": [[str(u), v] for u, v in sorted(
            ce.inputs.items(), key=lambda kv: str(kv[0])
        )],
        "node_faults": [
            {"node": str(nf.node), "kind": nf.kind, "key": nf.key}
            for nf in ce.node_faults
        ],
        "plan": ce.plan.to_dict(),
        "verdict": ce.verdict.describe(),
    }


def counterexample_from_dict(
    data: dict[str, Any], graph: CommunicationGraph
) -> Counterexample:
    by_name = {str(u): u for u in graph.nodes}
    inputs = {by_name[name]: value for name, value in data["inputs"]}
    node_faults = tuple(
        NodeFault(
            node=by_name[nf["node"]], kind=nf["kind"], key=nf["key"]
        )
        for nf in data["node_faults"]
    )
    plan = FaultPlan.from_dict(data["plan"], graph)
    return Counterexample(
        inputs=inputs,
        node_faults=node_faults,
        plan=plan,
        verdict=SpecVerdict(),
        attempt=data.get("attempt", 0),
    )


def _frontier_to_jsonable(frontier: DegradationFrontier) -> dict[str, Any]:
    return {
        "first_break": dict(frontier.first_break),
        "rows": [
            {
                "links": row.link_budget,
                "attempts": row.attempts,
                "broken": list(row.broken_conditions),
            }
            for row in frontier.rows
        ],
    }


__all__ = [
    "CampaignConfig",
    "CampaignResult",
    "Counterexample",
    "DEFAULT_LINK_KINDS",
    "DegradationFrontier",
    "FRONTIER_HEADERS",
    "FrontierRow",
    "NodeFault",
    "counterexample_from_dict",
    "counterexample_to_dict",
    "degradation_frontier",
    "execute_attempt",
    "replay_counterexample",
    "run_campaign",
    "sample_fault_plan",
    "shrink_counterexample",
]
