"""Theorem 1 engine tests: the executable impossibility proof finds a
violating correct behavior for every candidate device family we throw
at it, on both inadequate-by-nodes and inadequate-by-connectivity
graphs."""

import pytest

from repro.core import (
    CoveringArgumentError,
    refute_connectivity,
    refute_node_bound,
)
from repro.graphs import (
    GraphError,
    complete_graph,
    diamond,
    ring,
    triangle,
    wheel,
)
from repro.protocols.naive import (
    MajorityVoteDevice,
    MinimumDevice,
)
from repro.runtime.sync import FunctionDevice


def constant_device(value):
    """Always decides ``value`` — satisfies agreement, breaks validity."""
    return FunctionDevice(
        init=lambda ctx: value,
        send=lambda ctx, state, r: {},
        transition=lambda ctx, state, r, inbox: state,
        choose=lambda ctx, state: state,
    )


def echo_input_device():
    """Decides its own input — satisfies validity, breaks agreement."""
    return FunctionDevice(
        init=lambda ctx: ctx.input,
        send=lambda ctx, state, r: {},
        transition=lambda ctx, state, r, inbox: state,
        choose=lambda ctx, state: state,
    )


class TestNodeBound:
    def test_majority_vote_on_triangle(self):
        g = triangle()
        witness = refute_node_bound(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=3
        )
        assert witness.found
        assert len(witness.checked) == 3
        # The chain is glued by shared correct behaviors.
        assert len(witness.links) >= 2

    def test_constant_devices_break_validity(self):
        g = triangle()
        witness = refute_node_bound(
            g, {u: constant_device(0) for u in g.nodes}, 1, rounds=2
        )
        violated_conditions = {
            v.condition
            for checked in witness.violated
            for v in checked.verdict.violations
        }
        assert "validity" in violated_conditions

    def test_echo_devices_break_agreement(self):
        g = triangle()
        witness = refute_node_bound(
            g, {u: echo_input_device() for u in g.nodes}, 1, rounds=2
        )
        violated_conditions = {
            v.condition
            for checked in witness.violated
            for v in checked.verdict.violations
        }
        assert "agreement" in violated_conditions

    def test_six_nodes_two_faults(self):
        g = complete_graph(6)
        witness = refute_node_bound(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 2, rounds=3
        )
        assert witness.found
        for checked in witness.checked:
            assert len(checked.constructed.correct_nodes) >= len(g) - 2

    def test_five_nodes_two_faults(self):
        g = complete_graph(5)
        witness = refute_node_bound(
            g, {u: MinimumDevice() for u in g.nodes}, 2, rounds=3
        )
        assert witness.found

    def test_adequate_graph_rejected(self):
        g = complete_graph(4)
        with pytest.raises(GraphError):
            refute_node_bound(
                g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=2
            )

    def test_correct_count_at_least_n_minus_f(self):
        g = triangle()
        witness = refute_node_bound(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=3
        )
        for checked in witness.checked:
            assert len(checked.constructed.correct_nodes) >= len(g) - 1

    def test_nondeterministic_device_detected(self):
        import itertools

        counter = itertools.count()

        impure = FunctionDevice(
            init=lambda ctx: next(counter),
            send=lambda ctx, state, r: {},
            transition=lambda ctx, state, r, inbox: state,
            choose=lambda ctx, state: 0,
        )
        g = triangle()
        with pytest.raises(CoveringArgumentError):
            refute_node_bound(g, {u: impure for u in g.nodes}, 1, rounds=2)

    def test_undecided_devices_reported_as_termination(self):
        silent = FunctionDevice(
            init=lambda ctx: None,
            send=lambda ctx, state, r: {},
            transition=lambda ctx, state, r, inbox: state,
        )
        g = triangle()
        witness = refute_node_bound(
            g, {u: silent for u in g.nodes}, 1, rounds=2
        )
        conditions = {
            v.condition
            for checked in witness.violated
            for v in checked.verdict.violations
        }
        assert conditions == {"termination"}


class TestConnectivityBound:
    def test_majority_on_diamond(self):
        g = diamond()
        witness = refute_connectivity(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=4
        )
        assert witness.found

    def test_ring_of_six_one_fault(self):
        # Six nodes (enough for 3f+1) but connectivity 2 < 2f+1.
        g = ring(6)
        witness = refute_connectivity(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=4
        )
        assert witness.found

    def test_wheel_two_faults(self):
        # Wheel on 6 rim nodes: n = 7 >= 3f+1 for f = 2, connectivity 3
        # < 5 = 2f+1: inadequate by connectivity only.
        g = wheel(6)
        witness = refute_connectivity(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 2, rounds=4
        )
        assert witness.found

    def test_adequate_graph_rejected(self):
        g = complete_graph(4)
        from repro.graphs import CoveringError

        with pytest.raises(CoveringError):
            refute_connectivity(
                g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=2
            )

    def test_witness_description_readable(self):
        g = diamond()
        witness = refute_connectivity(
            g, {u: MajorityVoteDevice() for u in g.nodes}, 1, rounds=4
        )
        text = witness.describe()
        assert "VIOLATED" in text
        assert "chain links" in text
