#!/usr/bin/env python3
"""Approximate agreement as sensor fusion.

Four redundant sensors measure the same physical quantity; readings
differ slightly and one sensor may be arbitrarily faulty.  The
controllers must converge on nearly identical estimates without ever
leaving the range of honest readings — (ε, δ, γ)-agreement.

  1. On four nodes (n = 3f + 1) the DLPSW trimmed-mean protocol
     converges geometrically despite a Byzantine sensor.
  2. On three nodes Theorem 6's engine shows that *no* fusion rule can
     bound the disagreement by ε < δ — it builds the ring of scenarios
     from the paper's Section 6.2 and exhibits the drift (Lemma 7).

Run:  python examples/sensor_fusion.py
"""

from repro.analysis import format_table
from repro.core import refute_epsilon_delta
from repro.graphs import complete_graph, triangle
from repro.protocols import MedianDevice, dlpsw_devices
from repro.runtime.sync import RandomLiarDevice, make_system, run


def fusion_on_four_sensors() -> None:
    print("=" * 72)
    print("1. Four sensors, one Byzantine: trimmed-mean fusion converges")
    print("=" * 72)
    g = complete_graph(4, prefix="sensor")
    readings = {
        "sensor0": 20.1,
        "sensor1": 20.4,
        "sensor2": 19.9,
        "sensor3": 0.0,  # the faulty one — its input won't matter
    }
    rows = []
    for rounds in (1, 2, 3, 4, 5):
        devices = dict(dlpsw_devices(g, max_faults=1, rounds=rounds))
        devices["sensor3"] = RandomLiarDevice(
            seed=13, value_pool=(-100.0, 0.0, 999.0)
        )
        behavior = run(make_system(g, devices, readings), rounds)
        honest = ["sensor0", "sensor1", "sensor2"]
        estimates = [behavior.decision(u) for u in honest]
        rows.append(
            (
                rounds,
                min(estimates),
                max(estimates),
                max(estimates) - min(estimates),
            )
        )
    print(
        format_table(
            ("rounds", "min estimate", "max estimate", "spread"),
            rows,
            "honest-sensor estimates vs fusion rounds "
            "(inputs spread 0.5, liar injecting ±100s)",
        )
    )
    initial_spread = 20.4 - 19.9
    final_spread = rows[-1][3]
    assert final_spread < initial_spread / 4
    print()


def impossible_with_three_sensors() -> None:
    print("=" * 72)
    print("2. Three sensors, one Byzantine: no fusion rule can work")
    print("=" * 72)
    epsilon, delta, gamma = 0.25, 1.0, 1.0
    devices = {u: MedianDevice() for u in triangle().nodes}
    witness = refute_epsilon_delta(
        devices, epsilon=epsilon, delta=delta, gamma=gamma, rounds=3
    )
    print(
        f"(ε, δ, γ) = ({epsilon}, {delta}, {gamma}); the engine used the "
        f"(k+2)-ring with k = {witness.extra['k']}"
    )
    rows = [
        (
            row["node"],
            row["input"],
            row["chosen"],
            row["lemma7_upper_bound"],
            row["validity_lower_bound"],
        )
        for row in witness.extra["lemma7"]
    ]
    print(
        format_table(
            ("ring node", "input", "chosen", "Lemma 7 cap", "validity floor"),
            rows,
            "Lemma 7: chosen values must stay under δ+γ+iε yet climb past "
            "kδ-γ",
        )
    )
    print()
    first = witness.violated[0]
    print(
        f"First violated scenario: {first.label} "
        f"({first.verdict.describe()})"
    )


if __name__ == "__main__":
    fusion_on_four_sensors()
    impossible_with_three_sensors()
