"""T2 — Theorem 2, weak agreement (Section 4).

Regenerates: the 4k-ring figure with half-1/half-0 inputs, the Lemma 3
indistinguishability table, and the decision profile around the ring
showing agreement breaking exactly at the two half-boundaries.
"""

from conftest import report

from repro.analysis import format_table
from repro.core import agreement_frontier, refute_weak_agreement
from repro.graphs import triangle
from repro.protocols import AlarmWeakDevice, ExchangeOnceWeakDevice


def _factories(factory):
    return {u: factory for u in triangle().nodes}


def test_exchange_once_refutation(benchmark):
    witness = benchmark(
        lambda: refute_weak_agreement(
            _factories(lambda: ExchangeOnceWeakDevice(decide_at=2.0)),
            delta=1.0,
            decision_deadline=3.0,
        )
    )
    assert witness.found
    k = witness.extra["k"]
    assert witness.extra["ring_size"] == 4 * k
    assert k * 1.0 > witness.extra["t_prime"]

    lemma3 = format_table(
        ("ring node", "distance", "identical through", "decides", "expected"),
        [
            (
                r["node"],
                r["distance_to_other_half"],
                r["identical_through"],
                r["decides"],
                r["expected"],
            )
            for r in witness.extra["lemma3"]
        ],
        "Lemma 3: ring middles are indistinguishable from all-correct runs",
    )
    decisions = format_table(
        ("behavior", "correct pair", "verdict"),
        [
            (
                c.label,
                "/".join(
                    f"{u}:{c.constructed.behavior.node(u).decision}"
                    for u in sorted(map(str, c.constructed.correct_nodes))
                ),
                "OK" if c.verdict.ok else c.verdict.describe(),
            )
            for c in witness.checked
        ],
        "Every adjacent ring pair as a correct behavior of the triangle",
    )
    report("T2: weak agreement on the 4k ring", lemma3 + "\n\n" + decisions)

    # Shape: Lemma 3 middles decide their half's value; agreement
    # breaks at >= 2 boundary pairs.
    for row in witness.extra["lemma3"]:
        assert row["decides"] == row["expected"]
    assert len(agreement_frontier(witness)) >= 2


def test_alarm_device_refutation(benchmark):
    witness = benchmark(
        lambda: refute_weak_agreement(
            _factories(lambda: AlarmWeakDevice(alarm_at=1.5, decide_at=3.0)),
            delta=1.0,
            decision_deadline=4.0,
        )
    )
    assert witness.found
    benchmark.extra_info["k"] = witness.extra["k"]


def test_connectivity_variant_on_the_diamond(benchmark):
    """The paper's "the connectivity bound follows as for Byzantine
    agreement": the cyclic m-fold cover of the diamond (κ = 2 < 2f+1)
    refutes weak agreement there too."""
    from repro.core import refute_weak_agreement_connectivity
    from repro.graphs import diamond

    g = diamond()
    witness = benchmark(
        lambda: refute_weak_agreement_connectivity(
            g,
            {
                u: (lambda: ExchangeOnceWeakDevice(decide_at=2.0))
                for u in g.nodes
            },
            max_faults=1,
            delta=1.0,
            decision_deadline=3.0,
        )
    )
    assert witness.found
    benchmark.extra_info["copies"] = witness.extra["copies"]
