"""Problem specifications as executable checkers.

Each consensus problem in the paper is a pair (or triple) of conditions
on *correct system behaviors* — behaviors with at least ``n - f``
correct nodes.  Here every condition is a function from the observable
outcome of a behavior (decisions, decision times, logical clock
readings) to a verdict listing the violated conditions.

The checkers deliberately operate on plain data (mappings from node to
value) rather than runtime objects, so the same specs serve the
synchronous engines, the timed engines, and the protocol test suites.
"""

from __future__ import annotations

from collections.abc import Mapping
from dataclasses import dataclass, field
from typing import Any

from ..graphs.graph import NodeId


@dataclass(frozen=True)
class Violation:
    """One broken condition of a problem specification."""

    condition: str
    detail: str
    nodes: tuple[NodeId, ...] = ()

    def __str__(self) -> str:
        where = f" (nodes: {', '.join(map(str, self.nodes))})" if self.nodes else ""
        return f"[{self.condition}] {self.detail}{where}"


@dataclass(frozen=True)
class SpecVerdict:
    """The outcome of checking one behavior against one spec."""

    violations: tuple[Violation, ...] = field(default_factory=tuple)

    @property
    def ok(self) -> bool:
        return not self.violations

    def __bool__(self) -> bool:
        return self.ok

    def describe(self) -> str:
        if self.ok:
            return "all conditions satisfied"
        return "; ".join(str(v) for v in self.violations)


def _undecided(
    decisions: Mapping[NodeId, Any | None]
) -> tuple[NodeId, ...]:
    return tuple(u for u, v in decisions.items() if v is None)
