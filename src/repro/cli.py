"""Command-line interface: run the paper's experiments from a shell.

Examples
--------
::

    python -m repro classify --graph triangle --faults 1
    python -m repro refute byzantine --graph triangle --faults 1
    python -m repro refute connectivity --graph diamond --faults 1
    python -m repro refute weak --delta 1.0
    python -m repro refute firing --delta 1.0
    python -m repro refute eps-delta --epsilon 0.25 --delta-input 1.0
    python -m repro refute clock --alpha 0.1
    python -m repro sweep nodes --faults 1 2
    python -m repro sweep connectivity --faults 1
    python -m repro demo eig --graph complete:7 --faults 2
    python -m repro demo sparse --graph circulant:7:1,2 --faults 1
    python -m repro attack --protocol naive --graph complete:4 --faults 1
    python -m repro campaign --protocol naive --graph complete:4 --links 2
    python -m repro campaign --protocol eig --graph complete:4 --faults 1
    python -m repro --seed 7 campaign --protocol naive --frontier
    python -m repro campaign --protocol naive --graph complete:4 --jobs 4
    python -m repro sweep nodes --faults 1 2 --jobs 4
    python -m repro campaign --protocol naive --trace out.jsonl --metrics
    python -m repro profile summary out.jsonl
    python -m repro profile events out.jsonl --kind round_end
    python -m repro campaign --protocol eig --checkpoint ckpt/
    python -m repro sweep nodes --faults 1 2 --checkpoint ckpt/
    python -m repro resume ckpt/

Graph specs: ``triangle``, ``diamond``, ``complete:N``, ``ring:N``,
``wheel:N``, ``star:N``, ``circulant:N:o1,o2,...``.

The global ``--seed`` (before the subcommand) drives every randomized
search — adversary attacks and fault campaigns alike — so any run is
reproducible from the command line.  ``--jobs N`` on ``campaign`` /
``sweep`` / ``attack`` fans the independent work units across worker
processes; results (and ``--json`` files) are identical to serial runs.

Observability: ``--trace FILE`` on ``attack`` / ``campaign`` / ``sweep``
records a JSONL telemetry trace of the run (byte-identical for any
``--jobs`` value), ``--metrics`` prints the run summary, and ``repro
profile {summary,events,metrics} FILE`` inspects a recorded trace.

Checkpointing: ``--checkpoint DIR`` on ``campaign`` / ``sweep``
journals every completed attempt, frontier level, or sweep point to a
crash-safe run store; ``repro resume DIR`` re-runs the saved command,
skipping journaled items — output (including ``--json`` files and
``--trace`` traces) is byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import argparse
import sys
from collections.abc import Sequence

from . import obs
from .analysis import SWEEP_HEADERS, connectivity_sweep, format_table, node_bound_sweep
from .core import (
    SynchronizationSetting,
    refute_connectivity,
    refute_epsilon_delta,
    refute_firing_squad,
    refute_node_bound,
    refute_weak_agreement,
    refute_clock_sync,
)
from .graphs import (
    CommunicationGraph,
    GraphError,
    circulant,
    classify,
    complete_graph,
    diamond,
    ring,
    star,
    triangle,
    wheel,
)
from .problems import ByzantineAgreementSpec
from .protocols import (
    ExchangeOnceWeakDevice,
    LowerEnvelopeClockDevice,
    MajorityVoteDevice,
    MedianDevice,
    RelayFireDevice,
    eig_devices,
    sparse_agreement_devices,
)
from .runtime.sync import RandomLiarDevice
from .runtime.sync import make_system, run
from .runtime.timed import LinearClock


def parse_graph(spec: str) -> CommunicationGraph:
    """Parse a graph spec like ``triangle`` or ``circulant:7:1,2``."""
    parts = spec.split(":")
    name = parts[0]
    try:
        if name == "triangle":
            return triangle()
        if name == "diamond":
            return diamond()
        if name == "complete":
            return complete_graph(int(parts[1]))
        if name == "ring":
            return ring(int(parts[1]))
        if name == "wheel":
            return wheel(int(parts[1]))
        if name == "star":
            return star(int(parts[1]))
        if name == "circulant":
            offsets = [int(o) for o in parts[2].split(",")]
            return circulant(int(parts[1]), offsets)
    except (IndexError, ValueError) as exc:
        raise GraphError(f"malformed graph spec {spec!r}: {exc}") from exc
    raise GraphError(f"unknown graph family {name!r}")


def _cmd_classify(args) -> int:
    graph = parse_graph(args.graph)
    print(classify(graph, args.faults).describe())
    return 0


def _cmd_refute(args) -> int:
    if args.problem == "byzantine":
        graph = parse_graph(args.graph)
        devices = {u: MajorityVoteDevice() for u in graph.nodes}
        witness = refute_node_bound(graph, devices, args.faults, args.rounds)
    elif args.problem == "connectivity":
        graph = parse_graph(args.graph)
        devices = {u: MajorityVoteDevice() for u in graph.nodes}
        witness = refute_connectivity(graph, devices, args.faults, args.rounds)
    elif args.problem == "weak":
        factories = {
            u: (lambda: ExchangeOnceWeakDevice(decide_at=2 * args.delta))
            for u in triangle().nodes
        }
        witness = refute_weak_agreement(
            factories, delta=args.delta, decision_deadline=3 * args.delta
        )
    elif args.problem == "firing":
        factories = {
            u: (lambda: RelayFireDevice(fire_at=2.5 * args.delta))
            for u in triangle().nodes
        }
        witness = refute_firing_squad(
            factories, delta=args.delta, fire_deadline=3 * args.delta
        )
    elif args.problem == "eps-delta":
        devices = {u: MedianDevice() for u in triangle().nodes}
        witness = refute_epsilon_delta(
            devices,
            epsilon=args.epsilon,
            delta=args.delta_input,
            gamma=args.gamma,
            rounds=args.rounds,
        )
    elif args.problem == "clock":
        lower = LinearClock(1.0, 0.0)
        setting = SynchronizationSetting(
            p=LinearClock(1.0, 0.0),
            q=LinearClock(args.rate, 0.0),
            lower=lower,
            upper=LinearClock(1.0, args.envelope_gap),
            alpha=args.alpha,
            t_prime=1.0,
        )
        factories = {
            u: (lambda: LowerEnvelopeClockDevice(lower))
            for u in triangle().nodes
        }
        witness = refute_clock_sync(factories, setting)
    else:  # pragma: no cover - argparse restricts choices
        raise ValueError(args.problem)
    if getattr(args, "json", None):
        from .analysis.witness_io import save_witness

        path = save_witness(witness, args.json)
        print(f"witness written to {path}")
    if getattr(args, "verbose", False):
        from .analysis.traces import explain_witness

        print(explain_witness(witness))
    else:
        print(witness.describe())
    return 0


def _cmd_sweep(args) -> int:
    from .analysis.sweep import sweep_store_key

    shard = None
    if getattr(args, "checkpoint", None):
        from .analysis.runstore import RunStore

        store = RunStore(args.checkpoint)
        store.write_meta(
            "sweep",
            args.seed,
            {
                "dimension": args.dimension,
                "faults": list(args.faults),
                "jobs": args.jobs,
                "trace": getattr(args, "trace", None),
                "metrics": getattr(args, "metrics", False),
            },
        )
        effective = (
            list(args.faults)
            if args.dimension == "nodes"
            else args.faults[0]
        )
        shard = store.shard(sweep_store_key(args.dimension, effective))
    try:
        if args.dimension == "nodes":
            rows = node_bound_sweep(
                tuple(args.faults), jobs=args.jobs, store=shard
            )
            title = f"Theorem 1 node-bound sweep, f in {args.faults}"
        else:
            rows = connectivity_sweep(
                args.faults[0], jobs=args.jobs, store=shard
            )
            title = f"Connectivity sweep, f = {args.faults[0]}"
    finally:
        if shard is not None:
            shard.close()
    print(format_table(SWEEP_HEADERS, [r.as_tuple() for r in rows], title))
    return 0


def _cmd_report(args) -> int:
    from .analysis.report import render_report

    print(render_report())
    return 0


def _cmd_demo(args) -> int:
    graph = parse_graph(args.graph)
    f = args.faults
    if args.protocol == "eig":
        devices = dict(eig_devices(graph, f))
        rounds = f + 1
    else:
        devices, rounds = sparse_agreement_devices(graph, f)
        devices = dict(devices)
    nodes = list(graph.nodes)
    for i, node in enumerate(nodes[-f:]):
        devices[node] = RandomLiarDevice(seed=args.seed + i)
    inputs = {u: i % 2 for i, u in enumerate(nodes)}
    behavior = run(make_system(graph, devices, inputs), rounds)
    correct = nodes[: len(nodes) - f]
    verdict = ByzantineAgreementSpec().check(
        inputs, behavior.decisions(), correct
    )
    print(f"graph: {graph!r}, f = {f}, {rounds} rounds")
    print(f"inputs:    {inputs}")
    print(f"decisions: { {u: behavior.decision(u) for u in correct} }")
    print(f"spec:      {verdict.describe()}")
    return 0 if verdict.ok else 1


def _campaign_factory(protocol: str, faults: int):
    """(device_factory, default_rounds) for a campaign/attack protocol."""
    if protocol == "naive":
        return (
            lambda graph: {u: MajorityVoteDevice() for u in graph.nodes},
            2,
        )
    if protocol == "eig":
        return (lambda graph: eig_devices(graph, faults), faults + 1)
    raise GraphError(f"unknown protocol {protocol!r}")


def _cmd_attack(args) -> int:
    from .analysis.adversary_search import search_agreement_attacks
    from .runtime.memo import BehaviorCache

    graph = parse_graph(args.graph)
    factory, default_rounds = _campaign_factory(args.protocol, args.faults)
    rounds = args.rounds if args.rounds is not None else default_rounds
    cache = BehaviorCache() if args.cache_stats else None
    result = search_agreement_attacks(
        graph,
        factory,
        max_faults=args.faults,
        rounds=rounds,
        attempts=args.attempts,
        seed=args.seed,
        jobs=args.jobs,
        cache=cache,
    )
    print(result.describe())
    if cache is not None:
        registry = obs.get_registry() or obs.MetricsRegistry()
        obs.absorb_cache_stats(registry, cache.stats())
        print(obs.describe_cache(registry))
    return 0


def _cmd_campaign(args) -> int:
    from .analysis.campaign import (
        CampaignConfig,
        SearchStats,
        counterexample_from_dict,
        degradation_frontier,
        replay_counterexample,
        run_campaign,
    )
    from .analysis.tables import format_table
    from .runtime.memo import BehaviorCache

    graph = parse_graph(args.graph)
    factory, default_rounds = _campaign_factory(args.protocol, args.faults)
    rounds = args.rounds if args.rounds is not None else default_rounds
    kinds = tuple(args.kinds.split(",")) if args.kinds else None
    config = CampaignConfig(
        graph=graph,
        device_factory=factory,
        rounds=rounds,
        max_node_faults=args.faults,
        max_link_faults=args.links,
        attempts=args.attempts,
        seed=args.seed,
        **({"link_kinds": kinds} if kinds else {}),
    )

    if args.replay:
        from .analysis.witness_io import load_campaign

        data = load_campaign(args.replay)
        entry = data.get("shrunk") or data.get("found")
        if not entry:
            print("error: replay file holds no counterexample", file=sys.stderr)
            return 2
        ce = counterexample_from_dict(entry, graph)
        _, verdict, trace = replay_counterexample(config, ce)
        print(f"replayed: {verdict.describe()}")
        print(trace.describe())
        return 0

    shard = None
    if getattr(args, "checkpoint", None):
        from .analysis.campaign import campaign_store_key, frontier_store_key
        from .analysis.runstore import RunStore

        store = RunStore(args.checkpoint)
        store.write_meta("campaign", args.seed, _campaign_meta_args(args))
        key = (
            frontier_store_key(config)
            if args.frontier
            else campaign_store_key(config)
        )
        shard = store.shard(key)

    if args.frontier:
        from .analysis.campaign import FRONTIER_HEADERS

        frontier_cache = BehaviorCache() if args.cache_stats else None
        try:
            frontier = degradation_frontier(
                config,
                jobs=args.jobs,
                cache=frontier_cache,
                orbit_dedup=args.orbit_dedup,
                incremental=args.incremental,
                store=shard,
            )
        finally:
            if shard is not None:
                shard.close()
        print(
            format_table(
                FRONTIER_HEADERS,
                [row.as_tuple() for row in frontier.rows],
                f"graceful degradation, {args.protocol} on {args.graph} "
                f"(f={args.faults})",
            )
        )
        print(frontier.describe())
        if frontier_cache is not None:
            registry = obs.get_registry() or obs.MetricsRegistry()
            obs.absorb_cache_stats(registry, frontier_cache.stats())
            print(obs.describe_cache(registry))
        return 0

    cache = BehaviorCache()
    stats = SearchStats()
    try:
        result = run_campaign(
            config,
            jobs=args.jobs,
            cache=cache,
            orbit_dedup=args.orbit_dedup,
            incremental=args.incremental,
            stats=stats,
            store=shard,
        )
    finally:
        if shard is not None:
            shard.close()
    registry = obs.get_registry()
    if registry is not None:
        obs.absorb_search_stats(registry, stats)
    print(result.describe())
    if args.cache_stats:
        print(stats.describe())
    elif args.verbose:
        print(cache.describe())
    if result.broken and args.verbose and result.injection_trace:
        print("injection trace of the shrunk counterexample:")
        print(result.injection_trace.describe())
    if args.json:
        from .analysis.witness_io import save_campaign

        path = save_campaign(result, args.json)
        print(f"campaign written to {path}")
    return 0


def _campaign_meta_args(args) -> dict:
    """The campaign flags a run store must save so ``repro resume`` can
    rebuild the exact command (the global ``--seed`` is saved
    separately)."""
    return {
        "protocol": args.protocol,
        "graph": args.graph,
        "faults": args.faults,
        "links": args.links,
        "rounds": args.rounds,
        "attempts": args.attempts,
        "kinds": args.kinds,
        "jobs": args.jobs,
        "orbit_dedup": args.orbit_dedup,
        "incremental": args.incremental,
        "cache_stats": args.cache_stats,
        "frontier": args.frontier,
        "replay": None,
        "json": args.json,
        "verbose": args.verbose,
        "trace": getattr(args, "trace", None),
        "metrics": getattr(args, "metrics", False),
    }


def _cmd_resume(args) -> int:
    """Re-run the command a ``--checkpoint`` store was created by,
    skipping journaled work items.

    The store's ``meta.json`` holds the original subcommand, seed and
    flags; output — including ``--json`` files and ``--trace`` traces —
    is byte-identical to an uninterrupted run.  ``--jobs`` may be
    overridden (results are identical for any value).
    """
    from .analysis.runstore import RunStore

    store = RunStore(args.dir, create=False)
    meta = store.read_meta()
    handlers = {"campaign": _cmd_campaign, "sweep": _cmd_sweep}
    handler = handlers.get(meta["command"])
    if handler is None:
        raise ValueError(
            f"run store {args.dir} was written by unknown command "
            f"{meta['command']!r}"
        )
    saved = dict(meta["args"])
    if args.jobs is not None:
        saved["jobs"] = args.jobs
    resumed = argparse.Namespace(
        seed=meta["seed"], checkpoint=args.dir, **saved
    )
    # main() decided telemetry from the bare `resume` args; the saved
    # command's own --trace/--metrics flags are honored here instead.
    telemetry = _telemetry_requested(resumed)
    if telemetry:
        obs.enable()
    try:
        code = handler(resumed)
        if telemetry:
            _finish_telemetry(resumed)
        return code
    finally:
        if telemetry:
            obs.reset()


def _cmd_profile(args) -> int:
    if args.view == "summary":
        print(obs.summarize_trace(args.trace_file))
    elif args.view == "events":
        print(
            obs.format_events(
                args.trace_file,
                kind=args.kind,
                limit=args.limit,
                offset=args.offset,
            )
        )
    else:
        print(obs.format_metrics(args.trace_file))
    return 0


def _telemetry_requested(args) -> bool:
    """Did the parsed command ask for --trace or --metrics?"""
    return bool(getattr(args, "trace", None)) or bool(
        getattr(args, "metrics", False)
    )


def _finish_telemetry(args) -> None:
    """Flush the artifacts a ``--trace``/``--metrics`` run asked for."""
    registry = obs.get_registry()
    if registry is not None:
        obs.absorb_connectivity_stats(registry)
    if getattr(args, "trace", None):
        events = obs.write_trace(args.trace)
        print(f"trace written to {args.trace} ({events} events)")
    if getattr(args, "metrics", False):
        print(obs.render_live_summary())


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description=(
            "Executable reproduction of FLM 1985, 'Easy Impossibility "
            "Proofs for Distributed Consensus Problems'"
        ),
    )
    parser.add_argument(
        "--seed", type=int, default=0,
        help="seed for every randomized search (attack, campaign, demo)",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("classify", help="adequate or inadequate?")
    p.add_argument("--graph", default="triangle")
    p.add_argument("--faults", type=int, default=1)
    p.set_defaults(func=_cmd_classify)

    p = sub.add_parser("refute", help="run an impossibility engine")
    p.add_argument(
        "problem",
        choices=[
            "byzantine", "connectivity", "weak", "firing", "eps-delta",
            "clock",
        ],
    )
    p.add_argument("--graph", default="triangle")
    p.add_argument("--faults", type=int, default=1)
    p.add_argument("--rounds", type=int, default=3)
    p.add_argument("--delta", type=float, default=1.0)
    p.add_argument("--epsilon", type=float, default=0.25)
    p.add_argument("--delta-input", type=float, default=1.0)
    p.add_argument("--gamma", type=float, default=1.0)
    p.add_argument("--alpha", type=float, default=0.1)
    p.add_argument("--rate", type=float, default=1.2)
    p.add_argument("--envelope-gap", type=float, default=2.0)
    p.add_argument("--json", help="also write the witness to this JSON file")
    p.add_argument(
        "--verbose", action="store_true",
        help="print full traces of the violated behaviors",
    )
    p.set_defaults(func=_cmd_refute)

    p = sub.add_parser("sweep", help="threshold sweeps")
    p.add_argument("dimension", choices=["nodes", "connectivity"])
    p.add_argument("--faults", type=int, nargs="+", default=[1])
    p.add_argument(
        "--jobs", type=int, default=1,
        help="fan sweep points across N worker processes "
        "(output identical to serial)",
    )
    _add_checkpoint_flag(p, "sweep points")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "report", help="run every theorem's engine and tabulate"
    )
    p.set_defaults(func=_cmd_report)

    p = sub.add_parser("demo", help="run a positive protocol")
    p.add_argument("protocol", choices=["eig", "sparse"])
    p.add_argument("--graph", default="complete:4")
    p.add_argument("--faults", type=int, default=1)
    p.set_defaults(func=_cmd_demo)

    p = sub.add_parser(
        "attack", help="randomized Byzantine-node adversary search"
    )
    p.add_argument("--protocol", choices=["naive", "eig"], default="naive")
    p.add_argument("--graph", default="complete:4")
    p.add_argument("--faults", type=int, default=1)
    p.add_argument("--rounds", type=int, default=None)
    p.add_argument("--attempts", type=int, default=200)
    p.add_argument(
        "--jobs", type=int, default=None,
        help="parallel attack search with per-attempt seeding "
        "(same results for any N; omit for the legacy serial stream)",
    )
    p.add_argument(
        "--cache-stats", action="store_true",
        help="memoize attack verdicts by content and print the cache's "
        "hit/miss counters after the search (deprecated: the counters "
        "now come from the metrics registry; prefer --metrics)",
    )
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_attack)

    p = sub.add_parser(
        "campaign",
        help="fault-injection campaign: nodes + links, with shrinking",
    )
    p.add_argument("--protocol", choices=["naive", "eig"], default="naive")
    p.add_argument("--graph", default="complete:4")
    p.add_argument(
        "--faults", type=int, default=0, help="max faulty nodes (f)"
    )
    p.add_argument(
        "--links", type=int, default=2, help="max faulty links (k)"
    )
    p.add_argument("--rounds", type=int, default=None)
    p.add_argument("--attempts", type=int, default=100)
    p.add_argument(
        "--kinds",
        help="comma-separated link-fault kinds "
        "(drop,corrupt,delay,omit,partition)",
    )
    p.add_argument(
        "--jobs", type=int, default=1,
        help="fan campaign attempts (or frontier levels) across N worker "
        "processes; reports are byte-identical to serial runs",
    )
    p.add_argument(
        "--orbit-dedup", action="store_true",
        help="execute one scenario per graph-automorphism orbit and map "
        "verdicts back (results unchanged, fewer executions)",
    )
    p.add_argument(
        "--incremental", action="store_true",
        help="replay shared round prefixes from execution-trie snapshots "
        "(results unchanged, repeated prefixes become lookups)",
    )
    p.add_argument(
        "--cache-stats", action="store_true",
        help="print behavior-cache, orbit-dedup and prefix-trie hit/miss "
        "counters after the run (deprecated: the counters now come from "
        "the metrics registry; prefer --metrics)",
    )
    p.add_argument(
        "--frontier", action="store_true",
        help="sweep the link budget and report the degradation frontier",
    )
    p.add_argument(
        "--replay", help="re-run the counterexample stored in this JSON file"
    )
    p.add_argument("--json", help="write the campaign result to this file")
    p.add_argument(
        "--verbose", action="store_true",
        help="print the shrunk counterexample's injection trace",
    )
    _add_checkpoint_flag(p, "attempts (or frontier levels)")
    _add_telemetry_flags(p)
    p.set_defaults(func=_cmd_campaign)

    p = sub.add_parser(
        "resume",
        help="resume an interrupted --checkpoint campaign or sweep",
    )
    p.add_argument(
        "dir", help="the --checkpoint directory of the interrupted run"
    )
    p.add_argument(
        "--jobs", type=int, default=None,
        help="override the saved --jobs value (results are identical "
        "for any value)",
    )
    p.set_defaults(func=_cmd_resume)

    p = sub.add_parser(
        "profile", help="inspect a JSONL telemetry trace (--trace output)"
    )
    p.add_argument(
        "view", choices=["summary", "events", "metrics"],
        help="summary: totals and span-free overview; events: the "
        "timeline; metrics: the trace's run.* counters",
    )
    p.add_argument("trace_file", help="a trace written by --trace FILE")
    p.add_argument("--kind", help="events view: only this event kind")
    p.add_argument(
        "--limit", type=int, default=40,
        help="events view: show at most N events (default 40)",
    )
    p.add_argument(
        "--offset", type=int, default=0,
        help="events view: skip the first N matching events",
    )
    p.set_defaults(func=_cmd_profile)

    return parser


def _add_checkpoint_flag(p: argparse.ArgumentParser, items: str) -> None:
    p.add_argument(
        "--checkpoint", metavar="DIR",
        help=f"journal completed {items} to a crash-safe run store in "
        "DIR; 'repro resume DIR' continues an interrupted run with "
        "byte-identical output",
    )


def _add_telemetry_flags(p: argparse.ArgumentParser) -> None:
    p.add_argument(
        "--trace", metavar="FILE",
        help="record a JSONL telemetry trace of the run to FILE "
        "(byte-identical for any --jobs value; inspect with "
        "'repro profile')",
    )
    p.add_argument(
        "--metrics", action="store_true",
        help="print the telemetry run summary (events, metrics, spans) "
        "after the run",
    )


def main(argv: Sequence[str] | None = None) -> int:
    parser = build_parser()
    args = parser.parse_args(argv)
    telemetry = _telemetry_requested(args)
    if telemetry:
        obs.enable()
    try:
        code = args.func(args)
        if telemetry:
            _finish_telemetry(args)
        return code
    except (GraphError, ValueError, OSError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    finally:
        if telemetry:
            obs.reset()


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
