"""Bracha-style reliable broadcast: consistency, totality, validity at
n >= 3f+1, under senders and participants behaving arbitrarily."""

import pytest

from repro.graphs import GraphError, complete_graph
from repro.protocols.reliable_broadcast import reliable_broadcast_devices
from repro.runtime.sync import (
    RandomLiarDevice,
    ReplayDevice,
    SilentDevice,
    make_system,
    run,
)


def broadcast(n, f, sender_value, faulty=(), sender="n0"):
    g = complete_graph(n)
    devices, rounds = reliable_broadcast_devices(g, sender, f)
    devices = dict(devices)
    for node, bad in dict(faulty).items():
        devices[node] = bad
    inputs = {u: (sender_value if u == sender else None) for u in g.nodes}
    behavior = run(make_system(g, devices, inputs), rounds)
    correct = [u for u in g.nodes if u not in dict(faulty)]
    return {u: behavior.decision(u) for u in correct}


class TestValidity:
    def test_correct_sender_delivers_to_all(self):
        accepted = broadcast(4, 1, "V")
        assert set(accepted.values()) == {"V"}

    def test_with_silent_bystander(self):
        accepted = broadcast(4, 1, 7, faulty={"n2": SilentDevice()})
        assert set(accepted.values()) == {7}

    def test_with_lying_bystander(self):
        accepted = broadcast(
            4, 1, "msg", faulty={"n3": RandomLiarDevice(3)}
        )
        assert set(accepted.values()) == {"msg"}

    def test_two_faults_on_k7(self):
        accepted = broadcast(
            7,
            2,
            "payload",
            faulty={"n5": RandomLiarDevice(1), "n6": SilentDevice()},
        )
        assert set(accepted.values()) == {"payload"}


class TestConsistencyUnderFaultySender:
    def test_silent_sender_accepts_nothing(self):
        accepted = broadcast(4, 1, None, faulty={"n0": SilentDevice()})
        assert set(accepted.values()) == {None}

    def test_equivocating_sender_never_splits(self):
        # The sender SENDs different values to different peers; the
        # echo quorum (>= ceil((n+f+1)/2)) cannot form for two values.
        equivocator = ReplayDevice(
            {
                "n1": [("SEND", "X")],
                "n2": [("SEND", "X")],
                "n3": [("SEND", "Y")],
            }
        )
        accepted = broadcast(4, 1, None, faulty={"n0": equivocator})
        values = {v for v in accepted.values() if v is not None}
        assert len(values) <= 1  # consistency

    def test_totality(self):
        """If any correct node accepts, all do (within the horizon)."""
        equivocator = ReplayDevice(
            {
                "n1": [("SEND", "X")],
                "n2": [("SEND", "X")],
                "n3": [("SEND", "X")],
            }
        )
        accepted = broadcast(4, 1, None, faulty={"n0": equivocator})
        anyone = any(v is not None for v in accepted.values())
        everyone = all(v is not None for v in accepted.values())
        assert anyone == everyone


class TestGuards:
    def test_rejects_inadequate_n(self):
        g = complete_graph(3)
        with pytest.raises(GraphError):
            reliable_broadcast_devices(g, "n0", 1)

    def test_rejects_unknown_sender(self):
        g = complete_graph(4)
        with pytest.raises(GraphError):
            reliable_broadcast_devices(g, "zz", 1)
